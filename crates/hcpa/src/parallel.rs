//! Depth-sharded parallel HCPA collection over a recorded trace.
//!
//! The paper's §4.2 depth-range flag "facilitat[es] parallel data
//! collection for the HCPA": since shadow state for one depth range is
//! independent of every other range, the profile can be collected as K
//! passes with disjoint ranges and stitched. This module turns that into
//! a first-class API — and, unlike instrumented native re-execution,
//! pays for the program's execution **once**: [`profile_unit_parallel`]
//! records the event stream with [`kremlin_interp::trace::record`], then
//! [`profile_trace_parallel`] replays the shared immutable trace into K
//! depth-shard profilers, one per `std::thread` worker, and stitches the
//! slices with [`ParallelismProfile::stitch`]. Replay also makes the
//! depth-discovery pre-pass free: the recorder tracks the maximum
//! nesting depth as it goes.
//!
//! Shard ranges overlap by exactly one depth
//! (`min_depth = k * stride`, `window = stride + 1`): a region's
//! self-parallelism needs the availability times of both the region's
//! depth *and its children's*, so the shard that owns depth `d` also
//! tracks `d + 1`. With ranges planned this way the stitched profile is
//! **bit-identical** to a single full-window pass
//! ([`ParallelismProfile::identical_stats`]) whenever the depth estimate
//! covers the real nesting depth — which the recorded trace's own
//! [`max_depth`](kremlin_interp::trace::Trace::max_depth) guarantees
//! when no hint is supplied.

use crate::profile::ParallelismProfile;
use crate::profiler::HcpaConfig;
use crate::{profile_trace, ProfileOutcome};
use kremlin_interp::trace::{Trace, TraceError};
use kremlin_interp::{ExecHook, InterpError, MachineConfig, RetCtx};
use kremlin_ir::{CompiledUnit, FuncId, RegionId};
use std::time::Instant;

/// One shard's tracked depth range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// First tracked depth.
    pub min_depth: usize,
    /// Number of tracked depths. One more than the planning stride: each
    /// shard also tracks the first depth of the next shard's range, so
    /// every region's children are observed by the region's own shard.
    pub window: usize,
}

/// Configuration for depth-sharded collection.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of depth shards, each run on its own worker thread.
    pub jobs: usize,
    /// Maximum region nesting depth of the program, if known (e.g.
    /// `ProfilerStats::max_depth` from an earlier run). Sharding splits
    /// this range rather than the nominal window, so shallow programs
    /// don't leave most shards idle. When `None`, an uninstrumented
    /// discovery pass measures it. An *underestimate* trades the
    /// bit-identity guarantee for speed (depths beyond the estimate fall
    /// into the last shard's range untracked).
    pub depth_hint: Option<usize>,
    /// The profiling configuration of the equivalent serial pass. Its
    /// `window` is the total tracked-depth budget; `min_depth` must be 0
    /// (sharding owns the depth ranges).
    pub hcpa: HcpaConfig,
    /// Interpreter limits for every pass.
    pub machine: MachineConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            jobs: 3,
            depth_hint: None,
            hcpa: HcpaConfig::default(),
            machine: MachineConfig::default(),
        }
    }
}

/// Plans shard depth ranges: `depth` nesting levels, at most `window`
/// of them tracked (matching the serial pass's clamp), split across at
/// most `jobs` shards of one stride each, every shard overlapping the
/// next by one depth.
///
/// Returns fewer than `jobs` shards when there aren't enough tracked
/// depths to go around; at least one shard is always returned.
#[must_use]
pub fn plan_shards(depth: usize, window: usize, jobs: usize) -> Vec<ShardSpec> {
    let eff = depth.clamp(1, window.max(1));
    let jobs = jobs.max(1);
    let stride = eff.div_ceil(jobs);
    let mut shards = Vec::new();
    for k in 0..jobs {
        let min_depth = k * stride;
        if min_depth >= eff {
            break;
        }
        shards.push(ShardSpec { min_depth, window: (stride + 1).min(window - min_depth) });
    }
    shards
}

/// Counts region nesting depth without any shadow-state tracking: the
/// discovery pre-pass that sizes shard ranges.
#[derive(Debug, Default)]
struct DepthProbe {
    depth: usize,
    max: usize,
}

impl DepthProbe {
    #[inline]
    fn enter(&mut self) {
        self.depth += 1;
        self.max = self.max.max(self.depth);
    }
}

impl ExecHook for DepthProbe {
    fn on_function_enter(&mut self, _func: FuncId, _region: RegionId) {
        self.enter();
    }

    fn on_return(&mut self, _ctx: &RetCtx) {
        self.depth -= 1;
    }

    fn on_region_enter(&mut self, _region: RegionId) {
        self.enter();
    }

    fn on_region_exit(&mut self, _region: RegionId) {
        self.depth -= 1;
    }
}

/// Measures the maximum region nesting depth of `unit` with a plain
/// (shadow-free) execution.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn discover_depth(unit: &CompiledUnit, machine: MachineConfig) -> Result<usize, InterpError> {
    let mut probe = DepthProbe::default();
    kremlin_interp::run_with_hook(&unit.module, &mut probe, machine)?;
    Ok(probe.max)
}

/// Profiles `unit` with depth-sharded parallel collection: **one**
/// recorded execution, replayed into K depth-shard profilers (disjoint,
/// one-depth-overlapping tracked ranges), each on its own thread,
/// stitched into one profile.
///
/// The stitched profile's per-region statistics are bit-identical to a
/// single serial pass with `config.hcpa` (see
/// [`ParallelismProfile::identical_stats`]); the returned stats
/// aggregate shadow footprint across shards. Like
/// [`crate::profile_unit_sliced`], the embedded dictionary is the
/// shard-0 dictionary — run an unsliced profile when the simulator is
/// needed.
///
/// # Errors
///
/// Propagates interpreter failures from the recording pass.
///
/// # Panics
///
/// Panics if `config.hcpa.min_depth != 0` or `config.hcpa.window < 2`.
pub fn profile_unit_parallel(
    unit: &CompiledUnit,
    config: ParallelConfig,
) -> Result<ProfileOutcome, InterpError> {
    assert_eq!(config.hcpa.min_depth, 0, "sharding owns the depth ranges");
    assert!(config.hcpa.window >= 2, "window must cover a region and its children");
    let trace = kremlin_interp::trace::record(&unit.module, config.machine)?;
    Ok(profile_trace_parallel(unit, &trace, config)
        .expect("a freshly recorded trace replays against its own module"))
}

/// [`profile_unit_parallel`] over an already-recorded trace: replays the
/// shared immutable `trace` into K depth-shard profilers without any
/// execution at all. This is what `kremlin replay FILE --jobs N` runs.
///
/// When metrics are enabled, each worker additionally publishes its own
/// counter set under a `shard.N.` prefix: `events` (events replayed),
/// `instr_events` and `shadow_live_pages` (shadow slots touched), and a
/// `wall_us` gauge (worker wall time).
///
/// # Errors
///
/// [`TraceError::ModuleMismatch`] when the trace was not recorded from
/// `unit`'s module; [`TraceError::Corrupt`] for damaged event streams.
///
/// # Panics
///
/// Panics if `config.hcpa.min_depth != 0` or `config.hcpa.window < 2`.
pub fn profile_trace_parallel(
    unit: &CompiledUnit,
    trace: &Trace,
    config: ParallelConfig,
) -> Result<ProfileOutcome, TraceError> {
    assert_eq!(config.hcpa.min_depth, 0, "sharding owns the depth ranges");
    assert!(config.hcpa.window >= 2, "window must cover a region and its children");
    if !trace.matches(&unit.module) {
        return Err(TraceError::ModuleMismatch);
    }
    let depth = config.depth_hint.unwrap_or_else(|| trace.max_depth());
    let shards = plan_shards(depth, config.hcpa.window, config.jobs);
    if shards.len() <= 1 {
        return profile_trace(unit, trace, config.hcpa);
    }
    let stride = shards[0].window - 1;

    let mut outcomes: Vec<Option<Result<ProfileOutcome, TraceError>>> = Vec::new();
    outcomes.resize_with(shards.len(), || None);
    std::thread::scope(|scope| {
        for (k, (shard, slot)) in shards.iter().zip(outcomes.iter_mut()).enumerate() {
            let hcpa =
                HcpaConfig { window: shard.window, min_depth: shard.min_depth, ..config.hcpa };
            scope.spawn(move || {
                let started = Instant::now();
                let res = profile_trace(unit, trace, hcpa);
                if kremlin_obs::metrics_enabled() {
                    if let Ok(o) = &res {
                        kremlin_obs::counter_named(&format!("shard.{k}.events"))
                            .add(trace.events());
                        kremlin_obs::counter_named(&format!("shard.{k}.instr_events"))
                            .add(o.stats.instr_events);
                        kremlin_obs::counter_named(&format!("shard.{k}.shadow_live_pages"))
                            .add(o.stats.shadow_live_pages);
                        kremlin_obs::gauge_named(&format!("shard.{k}.wall_us"))
                            .set_max(started.elapsed().as_micros() as u64);
                    }
                }
                *slot = Some(res);
            });
        }
    });

    let mut slices = Vec::with_capacity(outcomes.len());
    let mut stats = None;
    let mut run = None;
    for outcome in outcomes {
        let o = outcome.expect("shard worker finished")?;
        match &mut stats {
            None => {
                stats = Some(o.stats);
                run = Some(o.run);
            }
            Some(s) => {
                debug_assert_eq!(run, Some(o.run), "shards disagree on execution");
                s.shadow_pages += o.stats.shadow_pages;
                s.shadow_live_pages += o.stats.shadow_live_pages;
                s.shadow_bytes += o.stats.shadow_bytes;
            }
        }
        slices.push(o.profile);
    }
    let stats = stats.expect("at least one shard");
    let stitch_span = kremlin_obs::span("stitch");
    let profile = ParallelismProfile::stitch(&slices, stride + 1);
    drop(stitch_span);
    kremlin_obs::counter!("hcpa.stitch.slices").add(slices.len() as u64);
    Ok(ProfileOutcome { profile, stats, run: run.expect("at least one shard") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_unit;

    const DEEP_SRC: &str = "float acc[16];\n\
        float work(float x) { float s = 0.0; for (int k = 0; k < 6; k++) { s += sqrt(x + (float) k); } return s; }\n\
        int main() {\n\
          for (int i = 0; i < 6; i++) {\n\
            for (int j = 0; j < 6; j++) {\n\
              acc[j] += work((float) (i * j));\n\
            }\n\
          }\n\
          return (int) acc[3];\n\
        }";

    #[test]
    fn shard_plans_cover_the_depth_range_with_overlap() {
        // 8 depths, 3 shards: stride 3.
        assert_eq!(
            plan_shards(8, 24, 3),
            vec![
                ShardSpec { min_depth: 0, window: 4 },
                ShardSpec { min_depth: 3, window: 4 },
                ShardSpec { min_depth: 6, window: 4 },
            ]
        );
        // Depth beyond the window: shards split the window, the last one
        // clipped to the serial clamp.
        assert_eq!(
            plan_shards(30, 8, 2),
            vec![ShardSpec { min_depth: 0, window: 5 }, ShardSpec { min_depth: 4, window: 4 },]
        );
        // More workers than depths: surplus shards dropped.
        assert_eq!(plan_shards(2, 24, 4).len(), 2);
        assert_eq!(plan_shards(1, 24, 4).len(), 1);
        // Degenerate inputs.
        assert_eq!(plan_shards(0, 24, 3), vec![ShardSpec { min_depth: 0, window: 2 }]);
        assert_eq!(plan_shards(5, 24, 1), vec![ShardSpec { min_depth: 0, window: 6 }]);
        // Every consecutive pair overlaps by exactly one depth.
        for (depth, window, jobs) in [(8, 24, 3), (30, 8, 2), (24, 24, 5), (7, 24, 7)] {
            let shards = plan_shards(depth, window, jobs);
            for w in shards.windows(2) {
                assert_eq!(w[0].min_depth + w[0].window, w[1].min_depth + 1, "{shards:?}");
            }
        }
    }

    #[test]
    fn depth_discovery_matches_profiler_max_depth() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let depth = discover_depth(&unit, MachineConfig::default()).unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        assert_eq!(depth, serial.stats.max_depth);
    }

    #[test]
    fn sharded_profile_is_bit_identical_to_serial() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        for jobs in [2, 3, 4] {
            let sharded =
                profile_unit_parallel(&unit, ParallelConfig { jobs, ..ParallelConfig::default() })
                    .unwrap();
            assert!(
                sharded.profile.identical_stats(&serial.profile),
                "{jobs}-way sharded profile differs from serial"
            );
            assert_eq!(sharded.run, serial.run);
            assert_eq!(sharded.stats.max_depth, serial.stats.max_depth);
            assert_eq!(sharded.stats.instr_events, serial.stats.instr_events);
        }
    }

    #[test]
    fn depth_hint_skips_discovery_and_still_matches() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let sharded = profile_unit_parallel(
            &unit,
            ParallelConfig {
                jobs: 3,
                depth_hint: Some(serial.stats.max_depth),
                ..ParallelConfig::default()
            },
        )
        .unwrap();
        assert!(sharded.profile.identical_stats(&serial.profile));
    }

    #[test]
    fn recorded_trace_knows_the_discovery_depth() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let depth = discover_depth(&unit, MachineConfig::default()).unwrap();
        let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default()).unwrap();
        assert_eq!(trace.max_depth(), depth);
    }

    #[test]
    fn replaying_one_trace_into_shards_matches_serial() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default()).unwrap();
        for jobs in [2, 3] {
            let sharded = profile_trace_parallel(
                &unit,
                &trace,
                ParallelConfig { jobs, ..ParallelConfig::default() },
            )
            .unwrap();
            assert!(
                sharded.profile.identical_stats(&serial.profile),
                "{jobs}-way replay-sharded profile differs from serial"
            );
            assert_eq!(sharded.run, serial.run);
            assert_eq!(sharded.stats.instr_events, serial.stats.instr_events);
        }
    }

    #[test]
    fn foreign_trace_is_rejected_not_misattributed() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let other = kremlin_ir::compile("int main() { return 1; }", "other.kc").unwrap();
        let trace = kremlin_interp::trace::record(&other.module, MachineConfig::default()).unwrap();
        let e = profile_trace_parallel(&unit, &trace, ParallelConfig::default()).unwrap_err();
        assert!(matches!(e, TraceError::ModuleMismatch));
    }

    #[test]
    fn single_shard_falls_back_to_serial() {
        let unit = kremlin_ir::compile("int main() { return 7; }", "t.kc").unwrap();
        let out =
            profile_unit_parallel(&unit, ParallelConfig { jobs: 4, ..ParallelConfig::default() })
                .unwrap();
        assert_eq!(out.run.exit, 7);
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        assert!(out.profile.identical_stats(&serial.profile));
    }
}
