//! Depth-sharded parallel HCPA collection over a recorded trace.
//!
//! The paper's §4.2 depth-range flag "facilitat[es] parallel data
//! collection for the HCPA": since shadow state for one depth range is
//! independent of every other range, the profile can be collected as K
//! passes with disjoint ranges and stitched. This module turns that into
//! a first-class API — and, unlike instrumented native re-execution,
//! pays for the program's execution **once**: [`profile_unit_parallel`]
//! records the event stream with [`kremlin_interp::trace::record`], then
//! [`profile_trace_parallel`] decodes the shared trace **once** into a
//! [`DecodedTrace`] arena, replays the decoded buffers into K
//! depth-shard profilers (one per `std::thread` worker, zero varint
//! work each), and stitches the slices with
//! [`ParallelismProfile::stitch_at`]. Replay also makes the
//! depth-discovery pre-pass free: the recorder tracks the maximum
//! nesting depth as it goes, and the decode pass accumulates the
//! per-depth cost histogram that [`plan_shards_weighted`] balances
//! shard boundaries with — uniform strides leave the shallowest shard
//! well above the mean on skewed workloads, and the max shard wall *is*
//! the critical path. [`ReplayStrategy::Streaming`] keeps the
//! decode-per-worker path for traces too large to materialize.
//!
//! Shard ranges overlap by exactly one depth (each shard's window is
//! one more than the depth span it owns): a region's self-parallelism
//! needs the availability times of both the region's depth *and its
//! children's*, so the shard that owns depth `d` also tracks `d + 1`. With ranges planned this way the stitched profile is
//! **bit-identical** to a single full-window pass
//! ([`ParallelismProfile::identical_stats`]) whenever the depth estimate
//! covers the real nesting depth — which the recorded trace's own
//! [`max_depth`](kremlin_interp::trace::Trace::max_depth) guarantees
//! when no hint is supplied.

use crate::profile::ParallelismProfile;
use crate::profiler::HcpaConfig;
use crate::{profile_decoded, profile_trace, ProfileOutcome};
use kremlin_interp::trace::{DecodedTrace, Trace, TraceError};
use kremlin_interp::{ExecHook, InterpError, MachineConfig, RetCtx};
use kremlin_ir::{CompiledUnit, FuncId, RegionId};
use std::time::Instant;

/// One shard's tracked depth range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// First tracked depth.
    pub min_depth: usize,
    /// Number of tracked depths. One more than the planning stride: each
    /// shard also tracks the first depth of the next shard's range, so
    /// every region's children are observed by the region's own shard.
    pub window: usize,
}

/// How shard workers consume the shared trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayStrategy {
    /// Decode the varint stream **once** into a shared
    /// [`DecodedTrace`] arena; every worker replays the decoded buffers
    /// with zero varint work, and shard boundaries are cost-balanced
    /// from the per-depth histogram the decode pass produces for free.
    #[default]
    Decoded,
    /// Every worker runs the streaming varint decoder over the raw
    /// trace bytes (the pre-arena behavior): K× redundant decode work,
    /// but no materialized arena — the right trade for traces too large
    /// to hold decoded in memory. Shards use the uniform planner (the
    /// histogram only exists after a decode pass).
    Streaming,
}

/// Configuration for depth-sharded collection.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of depth shards, each run on its own worker thread.
    pub jobs: usize,
    /// Maximum region nesting depth of the program, if known (e.g.
    /// `ProfilerStats::max_depth` from an earlier run). Sharding splits
    /// this range rather than the nominal window, so shallow programs
    /// don't leave most shards idle. When `None`, an uninstrumented
    /// discovery pass measures it. An *underestimate* trades the
    /// bit-identity guarantee for speed (depths beyond the estimate fall
    /// into the last shard's range untracked).
    pub depth_hint: Option<usize>,
    /// How workers consume the shared trace (decode-once arena by
    /// default; streaming for traces too big to materialize).
    pub strategy: ReplayStrategy,
    /// The profiling configuration of the equivalent serial pass. Its
    /// `window` is the total tracked-depth budget; `min_depth` must be 0
    /// (sharding owns the depth ranges).
    pub hcpa: HcpaConfig,
    /// Interpreter limits for every pass.
    pub machine: MachineConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            jobs: 3,
            depth_hint: None,
            strategy: ReplayStrategy::default(),
            hcpa: HcpaConfig::default(),
            machine: MachineConfig::default(),
        }
    }
}

/// Plans shard depth ranges: `depth` nesting levels, at most `window`
/// of them tracked (matching the serial pass's clamp), split across at
/// most `jobs` shards of one stride each, every shard overlapping the
/// next by one depth.
///
/// Returns fewer than `jobs` shards when there aren't enough tracked
/// depths to go around; at least one shard is always returned.
#[must_use]
pub fn plan_shards(depth: usize, window: usize, jobs: usize) -> Vec<ShardSpec> {
    let eff = depth.clamp(1, window.max(1));
    let jobs = jobs.max(1);
    let stride = eff.div_ceil(jobs);
    let mut shards = Vec::new();
    for k in 0..jobs {
        let min_depth = k * stride;
        if min_depth >= eff {
            break;
        }
        shards.push(ShardSpec { min_depth, window: (stride + 1).min(window - min_depth) });
    }
    shards
}

/// How many per-level instruction updates one region instance costs in
/// the shard planning model. An instance at a tracked stack position
/// pays enter/exit bookkeeping there — tag allocation, dictionary node
/// open/close, instance-stat merge — which is far heavier than one
/// instruction's per-level availability update. Calibrated on the NPB
/// workloads: measured decoded shard walls fit
/// `wall ≈ fixed + s · (level_updates + W · instances)` for `W` in the
/// 40–75 range, and the profiler's per-instance work (~hundreds of ns)
/// over its per-level update (~6 ns) agrees. Only shifts planned
/// boundaries; never affects correctness (stitching is bit-identical
/// at any boundaries).
pub const REGION_INSTANCE_WEIGHT: u64 = 64;

/// Per-depth planning cost for weighted sharding: the decode-time
/// instruction histogram ([`DecodedTrace::per_depth_cost`] — how many
/// per-level availability updates tracking each depth costs) plus
/// [`REGION_INSTANCE_WEIGHT`] times the region instances created at
/// that stack position ([`DecodedTrace::region_enter_hist`] — the
/// instance-churn term that dominates innermost loop depths).
#[must_use]
pub fn shard_plan_cost(decoded: &DecodedTrace) -> Vec<u64> {
    let instr = decoded.per_depth_cost();
    let enters = decoded.region_enter_hist();
    let len = instr.len().max(enters.len());
    let mut cost = vec![0u64; len];
    for (d, c) in cost.iter_mut().enumerate() {
        *c = instr.get(d).copied().unwrap_or(0)
            + REGION_INSTANCE_WEIGHT * enters.get(d).copied().unwrap_or(0);
    }
    cost
}

/// Plans cost-balanced shard depth ranges from a per-depth cost
/// histogram (what [`shard_plan_cost`] models from the decode pass's
/// histograms): an exact dynamic-programming linear partition of the
/// contiguous depth range into at most `jobs` chunks minimizing the
/// **maximum** shard cost — the replay critical path — instead of
/// [`plan_shards`]'s uniform strides.
///
/// A shard owning depths `[a, b)` also tracks the overlap depth `b`
/// (the one-depth-overlap invariant that makes stitching bit-identical),
/// so its cost in the optimization is `cost[a..=b]`, not `cost[a..b]`:
/// the planner charges each shard for the overlap work it really does.
///
/// Falls back to the uniform [`plan_shards`] when no histogram is
/// available (empty or all-zero `per_depth_cost`); like the uniform
/// planner, returns fewer than `jobs` shards when there aren't enough
/// depths, and at least one shard always.
#[must_use]
pub fn plan_shards_weighted(per_depth_cost: &[u64], window: usize, jobs: usize) -> Vec<ShardSpec> {
    let eff = per_depth_cost.len().min(window.max(1));
    let cost = &per_depth_cost[..eff];
    if eff == 0 || cost.iter().all(|&c| c == 0) {
        return plan_shards(per_depth_cost.len(), window, jobs);
    }
    let chunks = jobs.max(1).min(eff);

    let mut prefix = vec![0u64; eff + 1];
    for (d, &c) in cost.iter().enumerate() {
        prefix[d + 1] = prefix[d] + c;
    }
    // True cost of a shard owning [a, b): the owned span plus the
    // one-depth overlap at b (tracked but owned by the next shard).
    let chunk_cost =
        |a: usize, b: usize| -> u64 { prefix[b] - prefix[a] + if b < eff { cost[b] } else { 0 } };

    // dp[k][i]: minimal achievable max shard cost partitioning depths
    // [i, eff) into exactly k+1 chunks; cut[k][i] records the first
    // boundary of an optimal split. O(jobs · eff²) with eff ≤ window.
    let mut dp = vec![vec![u64::MAX; eff + 1]; chunks];
    let mut cut = vec![vec![0usize; eff + 1]; chunks];
    for (i, slot) in dp[0].iter_mut().enumerate().take(eff) {
        *slot = chunk_cost(i, eff);
    }
    for k in 1..chunks {
        // k more cuts need at least k depths after the first chunk.
        for i in 0..eff - k {
            for b in i + 1..=eff - k {
                let worst = chunk_cost(i, b).max(dp[k - 1][b]);
                if worst < dp[k][i] {
                    dp[k][i] = worst;
                    cut[k][i] = b;
                }
            }
        }
    }

    let mut starts = Vec::with_capacity(chunks);
    let mut at = 0usize;
    for k in (0..chunks).rev() {
        starts.push(at);
        if k > 0 {
            at = cut[k][at];
        }
    }

    let mut shards = Vec::with_capacity(starts.len());
    for (k, &min_depth) in starts.iter().enumerate() {
        let end = starts.get(k + 1).copied().unwrap_or(eff);
        // One more than the owned span: the overlap depth, clipped by the
        // serial clamp exactly like the uniform planner's last shard.
        shards.push(ShardSpec { min_depth, window: (end - min_depth + 1).min(window - min_depth) });
    }
    shards
}

/// Counts region nesting depth without any shadow-state tracking: the
/// discovery pre-pass that sizes shard ranges.
#[derive(Debug, Default)]
struct DepthProbe {
    depth: usize,
    max: usize,
}

impl DepthProbe {
    #[inline]
    fn enter(&mut self) {
        self.depth += 1;
        self.max = self.max.max(self.depth);
    }
}

impl ExecHook for DepthProbe {
    fn on_function_enter(&mut self, _func: FuncId, _region: RegionId) {
        self.enter();
    }

    fn on_return(&mut self, _ctx: &RetCtx) {
        self.depth -= 1;
    }

    fn on_region_enter(&mut self, _region: RegionId) {
        self.enter();
    }

    fn on_region_exit(&mut self, _region: RegionId) {
        self.depth -= 1;
    }
}

/// Measures the maximum region nesting depth of `unit` with a plain
/// (shadow-free) execution.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn discover_depth(unit: &CompiledUnit, machine: MachineConfig) -> Result<usize, InterpError> {
    let mut probe = DepthProbe::default();
    kremlin_interp::run_with_hook(&unit.module, &mut probe, machine)?;
    Ok(probe.max)
}

/// Profiles `unit` with depth-sharded parallel collection: **one**
/// recorded execution, replayed into K depth-shard profilers (disjoint,
/// one-depth-overlapping tracked ranges), each on its own thread,
/// stitched into one profile.
///
/// The stitched profile's per-region statistics are bit-identical to a
/// single serial pass with `config.hcpa` (see
/// [`ParallelismProfile::identical_stats`]); the returned stats
/// aggregate shadow footprint across shards. Like
/// [`crate::profile_unit_sliced`], the embedded dictionary is the
/// shard-0 dictionary — run an unsliced profile when the simulator is
/// needed.
///
/// # Errors
///
/// Propagates interpreter failures from the recording pass.
///
/// # Panics
///
/// Panics if `config.hcpa.min_depth != 0` or `config.hcpa.window < 2`.
pub fn profile_unit_parallel(
    unit: &CompiledUnit,
    config: ParallelConfig,
) -> Result<ProfileOutcome, InterpError> {
    assert_eq!(config.hcpa.min_depth, 0, "sharding owns the depth ranges");
    assert!(config.hcpa.window >= 2, "window must cover a region and its children");
    let trace = kremlin_interp::trace::record(&unit.module, config.machine)?;
    Ok(profile_trace_parallel(unit, &trace, config)
        .expect("a freshly recorded trace replays against its own module"))
}

/// [`profile_unit_parallel`] over an already-recorded trace: replays the
/// shared immutable `trace` into K depth-shard profilers without any
/// execution at all. This is what `kremlin replay FILE --jobs N` runs.
///
/// With the default [`ReplayStrategy::Decoded`], the varint stream is
/// decoded **once** into a shared [`DecodedTrace`] arena; workers replay
/// the decoded buffers with zero varint work, and shard boundaries come
/// from [`plan_shards_weighted`] over the per-depth cost histogram the
/// decode pass produced for free. [`ReplayStrategy::Streaming`] keeps
/// the pre-arena behavior (every worker streams the raw bytes, uniform
/// [`plan_shards`] boundaries) for traces too large to materialize.
///
/// When metrics are enabled, each worker additionally publishes its own
/// counter set under a `shard.N.` prefix: `events` (events replayed),
/// `instr_events` and `shadow_live_pages` (shadow slots touched), and a
/// `wall_us` gauge (worker wall time).
///
/// # Errors
///
/// [`TraceError::ModuleMismatch`] when the trace was not recorded from
/// `unit`'s module; [`TraceError::Corrupt`] for damaged event streams.
///
/// # Panics
///
/// Panics if `config.hcpa.min_depth != 0` or `config.hcpa.window < 2`.
pub fn profile_trace_parallel(
    unit: &CompiledUnit,
    trace: &Trace,
    config: ParallelConfig,
) -> Result<ProfileOutcome, TraceError> {
    assert_eq!(config.hcpa.min_depth, 0, "sharding owns the depth ranges");
    assert!(config.hcpa.window >= 2, "window must cover a region and its children");
    if !trace.matches(&unit.module) {
        return Err(TraceError::ModuleMismatch);
    }
    match config.strategy {
        ReplayStrategy::Decoded if config.jobs > 1 => {
            let decoded = DecodedTrace::decode(trace, &unit.module)?;
            profile_decoded_parallel(unit, &decoded, config)
        }
        _ => profile_trace_parallel_streaming(unit, trace, config),
    }
}

/// The [`ReplayStrategy::Streaming`] body of [`profile_trace_parallel`]:
/// uniform shard planning, every worker runs the varint decoder itself.
fn profile_trace_parallel_streaming(
    unit: &CompiledUnit,
    trace: &Trace,
    config: ParallelConfig,
) -> Result<ProfileOutcome, TraceError> {
    let depth = config.depth_hint.unwrap_or_else(|| trace.max_depth());
    let shards = plan_shards(depth, config.hcpa.window, config.jobs);
    if shards.len() <= 1 {
        return profile_trace(unit, trace, config.hcpa);
    }
    run_shards(&shards, trace.events(), config, |shard_cfg| profile_trace(unit, trace, shard_cfg))
}

/// [`profile_trace_parallel`] over an already-decoded trace: plans
/// cost-balanced shard boundaries from the arena's per-depth histogram
/// and replays the shared decoded buffers into K depth-shard profilers.
/// Use this directly to amortize one decode across many profiling
/// configurations; [`profile_trace_parallel`] calls it after decoding.
///
/// # Errors
///
/// [`TraceError::ModuleMismatch`] when the trace was not recorded from
/// `unit`'s module.
///
/// # Panics
///
/// Panics if `config.hcpa.min_depth != 0` or `config.hcpa.window < 2`.
pub fn profile_decoded_parallel(
    unit: &CompiledUnit,
    decoded: &DecodedTrace,
    config: ParallelConfig,
) -> Result<ProfileOutcome, TraceError> {
    assert_eq!(config.hcpa.min_depth, 0, "sharding owns the depth ranges");
    assert!(config.hcpa.window >= 2, "window must cover a region and its children");
    if !decoded.matches(&unit.module) {
        return Err(TraceError::ModuleMismatch);
    }
    let cost = shard_plan_cost(decoded);
    // A depth hint keeps its documented meaning: it truncates the
    // planning domain (an underestimate trades bit-identity for speed).
    let dom = config.depth_hint.unwrap_or(cost.len()).min(cost.len());
    let shards = plan_shards_weighted(&cost[..dom], config.hcpa.window, config.jobs);
    if shards.len() <= 1 || config.jobs <= 1 {
        return profile_decoded(unit, decoded, config.hcpa);
    }
    run_shards(&shards, decoded.events(), config, |shard_cfg| {
        profile_decoded(unit, decoded, shard_cfg)
    })
}

/// Per-worker metric handles, resolved **once** before the worker
/// spawns: `counter_named` allocates and takes a registry lock, which is
/// fine per shard but not inside hot reporting paths.
struct ShardMetrics {
    events: &'static kremlin_obs::Counter,
    instr_events: &'static kremlin_obs::Counter,
    shadow_live_pages: &'static kremlin_obs::Counter,
    wall_us: &'static kremlin_obs::Gauge,
}

impl ShardMetrics {
    fn resolve(k: usize) -> ShardMetrics {
        ShardMetrics {
            events: kremlin_obs::counter_named(&format!("shard.{k}.events")),
            instr_events: kremlin_obs::counter_named(&format!("shard.{k}.instr_events")),
            shadow_live_pages: kremlin_obs::counter_named(&format!("shard.{k}.shadow_live_pages")),
            wall_us: kremlin_obs::gauge_named(&format!("shard.{k}.wall_us")),
        }
    }

    fn publish(&self, events: u64, outcome: &ProfileOutcome, started: Instant) {
        self.events.add(events);
        self.instr_events.add(outcome.stats.instr_events);
        self.shadow_live_pages.add(outcome.stats.shadow_live_pages);
        self.wall_us.set_max(started.elapsed().as_micros() as u64);
    }
}

/// Spawns one worker per shard, collects the slices, aggregates shadow
/// stats, and stitches at the planned boundaries. `profile_shard` runs
/// on the worker thread with that shard's depth range installed;
/// `trace_events` is the shared trace's total event count (every shard
/// replays the whole stream).
fn run_shards<F>(
    shards: &[ShardSpec],
    trace_events: u64,
    config: ParallelConfig,
    profile_shard: F,
) -> Result<ProfileOutcome, TraceError>
where
    F: Fn(HcpaConfig) -> Result<ProfileOutcome, TraceError> + Sync,
{
    let mut outcomes: Vec<Option<Result<ProfileOutcome, TraceError>>> = Vec::new();
    outcomes.resize_with(shards.len(), || None);
    let metrics_on = kremlin_obs::metrics_enabled();
    std::thread::scope(|scope| {
        for (k, (shard, slot)) in shards.iter().zip(outcomes.iter_mut()).enumerate() {
            let hcpa =
                HcpaConfig { window: shard.window, min_depth: shard.min_depth, ..config.hcpa };
            let metrics = metrics_on.then(|| ShardMetrics::resolve(k));
            let profile_shard = &profile_shard;
            scope.spawn(move || {
                let started = Instant::now();
                let res = profile_shard(hcpa);
                if let (Some(m), Ok(o)) = (&metrics, &res) {
                    m.publish(trace_events, o, started);
                }
                *slot = Some(res);
            });
        }
    });

    let mut slices = Vec::with_capacity(outcomes.len());
    let mut stats = None;
    let mut run = None;
    for outcome in outcomes {
        let o = outcome.expect("shard worker finished")?;
        match &mut stats {
            None => {
                stats = Some(o.stats);
                run = Some(o.run);
            }
            Some(s) => {
                debug_assert_eq!(run, Some(o.run), "shards disagree on execution");
                s.shadow_pages += o.stats.shadow_pages;
                s.shadow_live_pages += o.stats.shadow_live_pages;
                s.shadow_bytes += o.stats.shadow_bytes;
            }
        }
        slices.push(o.profile);
    }
    let stats = stats.expect("at least one shard");
    let starts: Vec<usize> = shards.iter().map(|s| s.min_depth).collect();
    let stitch_span = kremlin_obs::span("stitch");
    let profile = ParallelismProfile::stitch_at(&slices, &starts);
    drop(stitch_span);
    kremlin_obs::counter!("hcpa.stitch.slices").add(slices.len() as u64);
    Ok(ProfileOutcome { profile, stats, run: run.expect("at least one shard") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_unit;

    const DEEP_SRC: &str = "float acc[16];\n\
        float work(float x) { float s = 0.0; for (int k = 0; k < 6; k++) { s += sqrt(x + (float) k); } return s; }\n\
        int main() {\n\
          for (int i = 0; i < 6; i++) {\n\
            for (int j = 0; j < 6; j++) {\n\
              acc[j] += work((float) (i * j));\n\
            }\n\
          }\n\
          return (int) acc[3];\n\
        }";

    #[test]
    fn shard_plans_cover_the_depth_range_with_overlap() {
        // 8 depths, 3 shards: stride 3.
        assert_eq!(
            plan_shards(8, 24, 3),
            vec![
                ShardSpec { min_depth: 0, window: 4 },
                ShardSpec { min_depth: 3, window: 4 },
                ShardSpec { min_depth: 6, window: 4 },
            ]
        );
        // Depth beyond the window: shards split the window, the last one
        // clipped to the serial clamp.
        assert_eq!(
            plan_shards(30, 8, 2),
            vec![ShardSpec { min_depth: 0, window: 5 }, ShardSpec { min_depth: 4, window: 4 },]
        );
        // More workers than depths: surplus shards dropped.
        assert_eq!(plan_shards(2, 24, 4).len(), 2);
        assert_eq!(plan_shards(1, 24, 4).len(), 1);
        // Degenerate inputs.
        assert_eq!(plan_shards(0, 24, 3), vec![ShardSpec { min_depth: 0, window: 2 }]);
        assert_eq!(plan_shards(5, 24, 1), vec![ShardSpec { min_depth: 0, window: 6 }]);
        // Every consecutive pair overlaps by exactly one depth.
        for (depth, window, jobs) in [(8, 24, 3), (30, 8, 2), (24, 24, 5), (7, 24, 7)] {
            let shards = plan_shards(depth, window, jobs);
            for w in shards.windows(2) {
                assert_eq!(w[0].min_depth + w[0].window, w[1].min_depth + 1, "{shards:?}");
            }
        }
    }

    /// Cost a shard really pays: the histogram over its full tracked
    /// range (owned span plus the overlap depth).
    fn shard_cost(cost: &[u64], s: &ShardSpec) -> u64 {
        let hi = (s.min_depth + s.window).min(cost.len());
        cost[s.min_depth.min(hi)..hi].iter().sum()
    }

    /// Exhaustive minimum over every contiguous partition of the
    /// effective depth range into at most `jobs` chunks.
    fn brute_force_best(cost: &[u64], window: usize, jobs: usize) -> u64 {
        let eff = cost.len().min(window);
        fn go(cost: &[u64], eff: usize, at: usize, left: usize) -> u64 {
            if left == 1 || at + 1 >= eff {
                return cost[at..eff].iter().sum();
            }
            let mut best = u64::MAX;
            for b in at + 1..eff {
                let head: u64 = cost[at..b].iter().sum::<u64>() + cost[b];
                best = best.min(head.max(go(cost, eff, b, left - 1)));
            }
            // Also allow using fewer chunks than permitted.
            best.min(cost[at..eff].iter().sum())
        }
        go(cost, eff, 0, jobs)
    }

    #[test]
    fn weighted_plans_preserve_the_overlap_invariant() {
        let hists: [&[u64]; 6] = [
            &[100, 90, 80, 40, 10, 2, 1, 1],      // typical suffix-sum skew
            &[7, 7, 7, 7, 7, 7, 7, 7],            // uniform
            &[1000, 1, 1, 1, 1, 1, 1, 1],         // extreme head spike
            &[5, 0, 0, 5, 0, 0, 5, 0],            // zero plateaus
            &[3],                                 // single depth
            &[50, 40, 30, 20, 10, 9, 8, 7, 6, 5], // deeper than some windows
        ];
        for cost in hists {
            for (window, jobs) in [(24, 3), (24, 1), (8, 2), (4, 4), (24, 16)] {
                let shards = plan_shards_weighted(cost, window, jobs);
                assert!(!shards.is_empty());
                assert!(shards.len() <= jobs.max(1), "{shards:?}");
                assert_eq!(shards[0].min_depth, 0, "{shards:?}");
                for w in shards.windows(2) {
                    assert_eq!(
                        w[0].min_depth + w[0].window,
                        w[1].min_depth + 1,
                        "one-depth overlap broken: {shards:?}"
                    );
                }
                let last = shards.last().unwrap();
                let eff = cost.len().min(window);
                assert!(
                    last.min_depth + last.window >= eff.min(window),
                    "plan does not cover the range: {shards:?}"
                );
                for s in &shards {
                    assert!(s.min_depth + s.window <= window, "serial clamp broken: {shards:?}");
                }
            }
        }
    }

    #[test]
    fn weighted_plans_are_optimal_against_brute_force() {
        let hists: [&[u64]; 5] = [
            &[100, 90, 80, 40, 10, 2, 1, 1],
            &[7, 7, 7, 7, 7, 7],
            &[1000, 1, 1, 1, 1, 1],
            &[5, 0, 0, 5, 0, 0, 5],
            &[1, 2, 3, 4, 5, 6, 7, 8],
        ];
        for cost in hists {
            for (window, jobs) in [(24, 2), (24, 3), (24, 4), (5, 3)] {
                let shards = plan_shards_weighted(cost, window, jobs);
                let planned_max = shards.iter().map(|s| shard_cost(cost, s)).max().unwrap();
                let best = brute_force_best(cost, window, jobs);
                assert_eq!(
                    planned_max, best,
                    "suboptimal split for cost={cost:?} window={window} jobs={jobs}: {shards:?}"
                );
            }
        }
    }

    #[test]
    fn weighted_plan_flattens_a_skewed_histogram() {
        // Suffix-sum-shaped skew: uniform strides overload shard 0.
        let cost: &[u64] = &[90, 60, 40, 12, 8, 4, 2, 1, 1];
        let uniform = plan_shards(cost.len(), 24, 3);
        let weighted = plan_shards_weighted(cost, 24, 3);
        let max = |plan: &[ShardSpec]| plan.iter().map(|s| shard_cost(cost, s)).max().unwrap();
        assert!(
            max(&weighted) < max(&uniform),
            "weighted {weighted:?} ({}) not flatter than uniform {uniform:?} ({})",
            max(&weighted),
            max(&uniform)
        );
    }

    #[test]
    fn shard_plan_cost_combines_level_updates_and_instance_churn() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default()).unwrap();
        let decoded = kremlin_interp::trace::DecodedTrace::decode(&trace, &unit.module).unwrap();
        let cost = shard_plan_cost(&decoded);
        let instr = decoded.per_depth_cost();
        let enters = decoded.region_enter_hist();
        assert_eq!(cost.len(), instr.len().max(enters.len()));
        for (d, &c) in cost.iter().enumerate() {
            assert_eq!(
                c,
                instr.get(d).copied().unwrap_or(0)
                    + REGION_INSTANCE_WEIGHT * enters.get(d).copied().unwrap_or(0),
                "depth {d}"
            );
        }
        // Every region instance lands somewhere: the churn term's total
        // is the weight times the number of enter events.
        let enters_total: u64 = enters.iter().sum();
        let instr_total: u64 = instr.iter().sum();
        let cost_total: u64 = cost.iter().sum();
        assert_eq!(cost_total, instr_total + REGION_INSTANCE_WEIGHT * enters_total);
        assert!(enters_total > 0, "deep program must create region instances");
    }

    #[test]
    fn weighted_plan_falls_back_to_uniform_without_a_histogram() {
        assert_eq!(plan_shards_weighted(&[], 24, 3), plan_shards(0, 24, 3));
        assert_eq!(plan_shards_weighted(&[0, 0, 0, 0, 0, 0, 0, 0], 24, 3), plan_shards(8, 24, 3));
        assert_eq!(plan_shards_weighted(&[0; 30], 8, 2), plan_shards(30, 8, 2));
    }

    #[test]
    fn decoded_and_streaming_strategies_are_bit_identical() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default()).unwrap();
        for jobs in [2, 3] {
            let decoded = profile_trace_parallel(
                &unit,
                &trace,
                ParallelConfig { jobs, ..ParallelConfig::default() },
            )
            .unwrap();
            let streaming = profile_trace_parallel(
                &unit,
                &trace,
                ParallelConfig {
                    jobs,
                    strategy: ReplayStrategy::Streaming,
                    ..ParallelConfig::default()
                },
            )
            .unwrap();
            assert!(decoded.profile.identical_stats(&serial.profile), "decoded {jobs}-way");
            assert!(streaming.profile.identical_stats(&serial.profile), "streaming {jobs}-way");
            assert_eq!(decoded.run, serial.run);
        }
        // The pre-decoded entry point matches too, amortizing one decode.
        let arena = kremlin_interp::trace::DecodedTrace::decode(&trace, &unit.module).unwrap();
        let out = profile_decoded_parallel(&unit, &arena, ParallelConfig::default()).unwrap();
        assert!(out.profile.identical_stats(&serial.profile));
    }

    #[test]
    fn depth_discovery_matches_profiler_max_depth() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let depth = discover_depth(&unit, MachineConfig::default()).unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        assert_eq!(depth, serial.stats.max_depth);
    }

    #[test]
    fn sharded_profile_is_bit_identical_to_serial() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        for jobs in [2, 3, 4] {
            let sharded =
                profile_unit_parallel(&unit, ParallelConfig { jobs, ..ParallelConfig::default() })
                    .unwrap();
            assert!(
                sharded.profile.identical_stats(&serial.profile),
                "{jobs}-way sharded profile differs from serial"
            );
            assert_eq!(sharded.run, serial.run);
            assert_eq!(sharded.stats.max_depth, serial.stats.max_depth);
            assert_eq!(sharded.stats.instr_events, serial.stats.instr_events);
        }
    }

    #[test]
    fn depth_hint_skips_discovery_and_still_matches() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let sharded = profile_unit_parallel(
            &unit,
            ParallelConfig {
                jobs: 3,
                depth_hint: Some(serial.stats.max_depth),
                ..ParallelConfig::default()
            },
        )
        .unwrap();
        assert!(sharded.profile.identical_stats(&serial.profile));
    }

    #[test]
    fn recorded_trace_knows_the_discovery_depth() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let depth = discover_depth(&unit, MachineConfig::default()).unwrap();
        let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default()).unwrap();
        assert_eq!(trace.max_depth(), depth);
    }

    #[test]
    fn replaying_one_trace_into_shards_matches_serial() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default()).unwrap();
        for jobs in [2, 3] {
            let sharded = profile_trace_parallel(
                &unit,
                &trace,
                ParallelConfig { jobs, ..ParallelConfig::default() },
            )
            .unwrap();
            assert!(
                sharded.profile.identical_stats(&serial.profile),
                "{jobs}-way replay-sharded profile differs from serial"
            );
            assert_eq!(sharded.run, serial.run);
            assert_eq!(sharded.stats.instr_events, serial.stats.instr_events);
        }
    }

    #[test]
    fn foreign_trace_is_rejected_not_misattributed() {
        let unit = kremlin_ir::compile(DEEP_SRC, "deep.kc").unwrap();
        let other = kremlin_ir::compile("int main() { return 1; }", "other.kc").unwrap();
        let trace = kremlin_interp::trace::record(&other.module, MachineConfig::default()).unwrap();
        let e = profile_trace_parallel(&unit, &trace, ParallelConfig::default()).unwrap_err();
        assert!(matches!(e, TraceError::ModuleMismatch));
    }

    #[test]
    fn single_shard_falls_back_to_serial() {
        let unit = kremlin_ir::compile("int main() { return 7; }", "t.kc").unwrap();
        let out =
            profile_unit_parallel(&unit, ParallelConfig { jobs: 4, ..ParallelConfig::default() })
                .unwrap();
        assert_eq!(out.run.exit, 7);
        let serial = profile_unit(&unit, HcpaConfig::default()).unwrap();
        assert!(out.profile.identical_stats(&serial.profile));
    }
}
