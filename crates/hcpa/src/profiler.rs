//! The hierarchical critical path analysis profiler.
//!
//! Implements [`ExecHook`]: for every executed instruction it updates one
//! availability time **per active region-nesting depth** (paper §4.2 —
//! "we must run separate critical path analyses across each nested dynamic
//! region"), tracks per-region work, and on region exit interns a
//! `(static region, work, cp, children)` summary into the compression
//! dictionary (§4.4).
//!
//! Dependence rules (§4.1):
//!
//! * data dependencies through SSA values and memory, with **false
//!   dependencies factored out** (writes never depend on the old value);
//! * control dependencies via the condition times pushed on the
//!   control-dependence stack (times only increase, so only the top is
//!   consulted);
//! * induction/reduction updates ignore their old-value operand when
//!   [`HcpaConfig::break_carried_deps`] is set (the default — turning it
//!   off is the ablation that makes most loops look serial).
//!
//! # Hot path
//!
//! [`ProfilerCore::on_instr`] runs once per executed instruction and is
//! where nearly all profiling time goes. It is structured as a single
//! **op-major** pass: per-depth region tags and availability times live in
//! reusable scratch buffers, each operand/memory access is resolved with
//! one bulk [`RegShadow::gather_max`] / [`MemShadow::gather_max`] call
//! that amortizes the location lookup across every tracked depth, and the
//! final times are committed with one bulk `write_run`. Per-region work is
//! not accumulated per instruction at all: a single global latency counter
//! advances in O(1), and each region's work is the counter delta across
//! its lifetime (plus call latencies credited at tracked depths, exactly
//! as the depth-major reference formulation does).
//!
//! The profiler is generic over the shadow backend: [`Profiler`] uses the
//! packed depth-contiguous stores, [`BaselineProfiler`] the
//! pre-optimization split-array stores (one page lookup per depth),
//! isolating the layout's contribution. The full pre-optimization
//! profiler — the `BENCH_profiler.json` baseline — is kept frozen in
//! [`crate::seed`].

use crate::cost::CostModel;
use crate::shadow::{BaselineMemory, BaselineRegs, MemShadow, RegShadow, ShadowMemory, ShadowRegs};
use kremlin_compress::{Dictionary, EntryId};
use kremlin_interp::{CallCtx, ExecHook, InstrCtx, RetCtx};
use kremlin_ir::instr::InstrKind;
use kremlin_ir::{FuncId, Module, RegionId, ValueId};
use std::collections::HashMap;

/// HCPA configuration.
#[derive(Debug, Clone, Copy)]
pub struct HcpaConfig {
    /// Number of region-nesting depths tracked in shadow state (the paper's
    /// "command line flag [that] can vary the range of region depths that
    /// are collected", §4.2). Regions outside the tracked range report SP 1.
    pub window: usize,
    /// First depth tracked. Together with `window` this is the paper's
    /// depth *range*: several runs with disjoint ranges can be collected
    /// (even in parallel, see [`crate::parallel`]) and stitched with
    /// [`crate::profile::ParallelismProfile::stitch`].
    pub min_depth: usize,
    /// Apply the induction/reduction dependence-breaking rule. Disabling
    /// this reproduces plain (non-broken) CPA per level.
    pub break_carried_deps: bool,
    /// Instruction latencies.
    pub cost: CostModel,
}

impl Default for HcpaConfig {
    fn default() -> Self {
        HcpaConfig {
            window: 24,
            min_depth: 0,
            break_carried_deps: true,
            cost: CostModel::default(),
        }
    }
}

/// Statistics about one profiling run.
#[derive(Debug, Clone, Default)]
pub struct ProfilerStats {
    /// Instruction events observed.
    pub instr_events: u64,
    /// Dynamic region instances summarized (loops, bodies, functions).
    pub dynamic_regions: u64,
    /// Peak region nesting depth observed.
    pub max_depth: usize,
    /// Shadow memory pages ever allocated (historical count).
    pub shadow_pages: u64,
    /// Shadow memory pages currently resident at the end of the run.
    pub shadow_live_pages: u64,
    /// Shadow memory footprint in bytes of the live pages, derived from
    /// the backend's actual slot layout.
    pub shadow_bytes: u64,
    /// Minimum dynamic nesting depth observed per static region (indexed
    /// by region id); `None` for regions never entered. Diagnostic: a
    /// region may also appear at deeper depths (stitching accounts for
    /// every depth separately).
    pub region_min_depth: Vec<Option<usize>>,
}

struct ActiveRegion {
    static_id: RegionId,
    /// Global work-counter value at region entry: the region's work is the
    /// counter delta over its lifetime plus `work_extra`.
    work_base: u64,
    /// Work credited explicitly (call latencies at tracked depths).
    work_extra: u64,
    cp: u64,
    children: HashMap<EntryId, u64>,
}

struct CallRecord {
    call_value: ValueId,
    /// Caller depth count at call time: the row stride of `arg_times`.
    depths: usize,
    /// Flattened per-argument availability times, indexed
    /// `arg * depths + depth` (absolute depth; untracked depths are 0).
    arg_times: Vec<u64>,
}

/// HCPA profiler core, generic over the shadow-state backend. Feed it to
/// [`kremlin_interp::run_with_hook`], then call [`ProfilerCore::finish`].
pub struct ProfilerCore<'m, R: RegShadow, M: MemShadow> {
    module: &'m Module,
    config: HcpaConfig,
    dict: Dictionary,
    regions: Vec<ActiveRegion>,
    /// `region_tags[d]` mirrors `regions[d].tag`: kept as a flat array so
    /// the per-instruction hot path can slice it instead of re-gathering
    /// tags from the region stack.
    region_tags: Vec<u64>,
    cd_stack: Vec<Vec<u64>>,
    /// Retired control-dependence vectors, reused by `on_cd_push`.
    cd_pool: Vec<Vec<u64>>,
    mem: M,
    frames: Vec<R>,
    calls: Vec<CallRecord>,
    /// Retired call argument-time buffers, reused by `on_call`.
    call_pool: Vec<Vec<u64>>,
    next_tag: u64,
    /// Total instruction latency observed so far (O(1) work accrual).
    work_counter: u64,
    stats: ProfilerStats,
    ops: Vec<ValueId>,
    /// Scratch: per tracked depth, the availability time being computed.
    t_scratch: Vec<u64>,
    /// Scratch: returned-value times captured across the callee teardown.
    ret_scratch: Vec<u64>,
}

/// The profiler with the optimized packed shadow backend.
pub type Profiler<'m> = ProfilerCore<'m, ShadowRegs, ShadowMemory>;

/// The optimized hot path over the pre-optimization shadow backend (split
/// tag/time arrays, one page lookup per depth). Produces bit-identical
/// profiles to [`Profiler`]; isolates the shadow-layout contribution in
/// benchmarks and differential tests. (The full pre-optimization profiler
/// is [`crate::seed::SeedProfiler`].)
pub type BaselineProfiler<'m> = ProfilerCore<'m, BaselineRegs, BaselineMemory>;

impl<'m, R: RegShadow, M: MemShadow> ProfilerCore<'m, R, M> {
    /// Creates a profiler for `module`.
    pub fn new(module: &'m Module, config: HcpaConfig) -> Self {
        ProfilerCore {
            module,
            config,
            dict: Dictionary::new(),
            regions: Vec::new(),
            region_tags: Vec::new(),
            cd_stack: Vec::new(),
            cd_pool: Vec::new(),
            mem: M::new(config.window),
            frames: Vec::new(),
            calls: Vec::new(),
            call_pool: Vec::new(),
            next_tag: 1,
            work_counter: 0,
            stats: ProfilerStats {
                region_min_depth: vec![None; module.regions.len()],
                ..ProfilerStats::default()
            },
            ops: Vec::new(),
            t_scratch: Vec::with_capacity(config.window),
            ret_scratch: Vec::new(),
        }
    }

    /// Consumes the profiler, returning the compressed parallelism profile
    /// and run statistics.
    ///
    /// # Panics
    ///
    /// Panics if regions are still open (the run did not complete).
    pub fn finish(mut self) -> (Dictionary, ProfilerStats) {
        assert!(self.regions.is_empty(), "profiling finished with open regions");
        self.stats.shadow_pages = self.mem.pages_allocated();
        self.stats.shadow_live_pages = self.mem.live_pages();
        self.stats.shadow_bytes = self.mem.footprint_bytes();
        if kremlin_obs::metrics_enabled() {
            // Flush run-local tallies in one shot; nothing is counted per
            // instruction on the hot path.
            kremlin_obs::counter!("hcpa.instr_events").add(self.stats.instr_events);
            kremlin_obs::counter!("hcpa.dynamic_regions").add(self.stats.dynamic_regions);
            kremlin_obs::counter!("hcpa.shadow.pages_allocated").add(self.stats.shadow_pages);
            kremlin_obs::gauge!("hcpa.shadow.live_pages").set_max(self.stats.shadow_live_pages);
            kremlin_obs::gauge!("hcpa.shadow.footprint_bytes").set_max(self.stats.shadow_bytes);
            kremlin_obs::gauge!("hcpa.max_depth").set_max(self.stats.max_depth as u64);
            let (hits, misses) = self.mem.cache_stats();
            kremlin_obs::counter!("hcpa.shadow.cache_hits").add(hits);
            kremlin_obs::counter!("hcpa.shadow.cache_misses").add(misses);
        }
        (self.dict, self.stats)
    }

    fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn push_region(&mut self, static_id: RegionId) {
        let tag = self.fresh_tag();
        let depth = self.regions.len();
        let slot = &mut self.stats.region_min_depth[static_id.index()];
        *slot = Some(slot.map_or(depth, |d| d.min(depth)));
        self.regions.push(ActiveRegion {
            static_id,
            work_base: self.work_counter,
            work_extra: 0,
            cp: 0,
            children: HashMap::new(),
        });
        self.region_tags.push(tag);
        self.stats.max_depth = self.stats.max_depth.max(self.regions.len());
    }

    fn pop_region(&mut self, expected: RegionId) -> EntryId {
        let r = self.regions.pop().expect("region stack underflow");
        self.region_tags.pop();
        debug_assert_eq!(r.static_id, expected, "mismatched region exit");
        let work = self.work_counter - r.work_base + r.work_extra;
        let mut children: Vec<(EntryId, u64)> = r.children.into_iter().collect();
        children.sort_by_key(|(c, _)| *c);
        let id = self.dict.intern(r.static_id.0, work, r.cp, children);
        self.stats.dynamic_regions += 1;
        kremlin_obs::histogram!("hcpa.region_work").record(work);
        match self.regions.last_mut() {
            Some(parent) => {
                *parent.children.entry(id).or_insert(0) += 1;
            }
            None => self.dict.set_root(id),
        }
        id
    }

    #[inline]
    fn cd_time(&self, depth: usize) -> u64 {
        match self.cd_stack.last() {
            Some(v) => v.get(depth).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// The tracked absolute-depth range `[lo, hi)`.
    #[inline]
    fn tracked_range(&self) -> (usize, usize) {
        let lo = self.config.min_depth.min(self.regions.len());
        let hi = self.regions.len().min(self.config.min_depth + self.config.window);
        (lo, hi)
    }
}

impl<R: RegShadow, M: MemShadow> ExecHook for ProfilerCore<'_, R, M> {
    fn on_instr(&mut self, ctx: &InstrCtx<'_>) {
        self.stats.instr_events += 1;
        let lat = self.config.cost.latency(ctx.kind);

        // Work accrues at every active depth: a single counter advance
        // stands in for incrementing each open region (the region's work
        // is reconstructed as a counter delta at exit).
        self.work_counter += lat;

        let (lo, hi) = self.tracked_range();
        if lo >= hi {
            // No tracked depth is active (e.g. a depth shard whose range
            // the execution has not reached): nothing else to update.
            return;
        }
        let n = hi - lo;

        // Per-depth availability times seeded from the control dependence
        // on the enclosing branch condition.
        self.t_scratch.clear();
        match self.cd_stack.last() {
            Some(v) => self.t_scratch.extend((lo..hi).map(|d| v.get(d).copied().unwrap_or(0))),
            None => self.t_scratch.resize(n, 0),
        }

        let is_store = matches!(ctx.kind, InstrKind::Store { .. });
        if let InstrKind::Param(i) = ctx.kind {
            // Parameter times come from the call site's argument times
            // (depths beyond the caller's depth default to 0).
            if let Some(call) = self.calls.last() {
                let base = *i as usize * call.depths;
                for (k, slot) in self.t_scratch.iter_mut().enumerate() {
                    let d = lo + k;
                    if d < call.depths {
                        *slot = (*slot).max(call.arg_times[base + d]);
                    }
                }
            }
        } else {
            // Gather value operands, then fold each one's times across all
            // tracked depths in one bulk pass per operand.
            self.ops.clear();
            match ctx.kind {
                InstrKind::Phi { .. } => {
                    if let Some(src) = ctx.phi_source {
                        self.ops.push(src);
                    }
                }
                kind => kind.operands(&mut self.ops),
            }
            let break_on = if self.config.break_carried_deps {
                ctx.func.value(ctx.value).break_dep_on
            } else {
                None
            };
            let frame = self.frames.last().expect("shadow frame");
            let tags = &self.region_tags[lo..hi];
            for &op in &self.ops {
                if Some(op) == break_on {
                    continue;
                }
                frame.gather_max(op.index(), tags, &mut self.t_scratch);
            }
            if let (InstrKind::Load(_), Some(addr)) = (ctx.kind, ctx.mem_addr) {
                self.mem.gather_max(addr, tags, &mut self.t_scratch);
            }
        }

        for t in &mut self.t_scratch {
            *t += lat;
        }
        let tags = &self.region_tags[lo..hi];
        if is_store {
            let addr = ctx.mem_addr.expect("store has an address");
            self.mem.write_run(addr, tags, &self.t_scratch);
        } else {
            let frame = self.frames.last_mut().expect("shadow frame");
            frame.write_run(ctx.value.index(), tags, &self.t_scratch);
        }
        for (r, &t) in self.regions[lo..hi].iter_mut().zip(&self.t_scratch) {
            r.cp = r.cp.max(t);
        }
    }

    fn on_call(&mut self, ctx: &CallCtx<'_>) {
        let (lo, hi) = self.tracked_range();
        let mut buf = self.call_pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(ctx.args.len() * hi, 0);
        let frame = self.frames.last().expect("caller shadow frame");
        for (a_i, a) in ctx.args.iter().enumerate() {
            for d in lo..hi {
                buf[a_i * hi + d] = frame.read(a.index(), d - lo, self.region_tags[d]);
            }
        }
        self.calls.push(CallRecord { call_value: ctx.call_value, depths: hi, arg_times: buf });
    }

    fn on_function_enter(&mut self, func: FuncId, region: RegionId) {
        self.push_region(region);
        let f = self.module.func(func);
        self.frames.push(R::new(f.values.len(), self.config.window));
    }

    fn on_return(&mut self, ctx: &RetCtx) {
        // Capture the returned value's times at the caller's depths before
        // tearing the callee down. The callee's own depth is the current
        // innermost region.
        let (lo, hi) = self.tracked_range();
        let caller_hi = hi.min(self.regions.len() - 1);
        let mut ret_times = std::mem::take(&mut self.ret_scratch);
        ret_times.clear();
        ret_times.resize(caller_hi, 0);
        if let Some(v) = ctx.returned {
            let frame = self.frames.last().expect("callee shadow frame");
            for (d, slot) in ret_times.iter_mut().enumerate().take(caller_hi).skip(lo) {
                *slot = frame.read(v.index(), d - lo, self.region_tags[d]);
            }
        }

        self.pop_region(ctx.region);
        self.frames.pop();

        if let Some(call) = self.calls.pop() {
            let lat = self.config.cost.call;
            let (lo, hi) = self.tracked_range();
            let frame = self.frames.last_mut().expect("caller shadow frame");
            for d in lo..hi {
                let tag = self.region_tags[d];
                let t = ret_times.get(d).copied().unwrap_or(0) + lat;
                frame.write(call.call_value.index(), d - lo, tag, t);
                let r = &mut self.regions[d];
                r.cp = r.cp.max(t);
                r.work_extra += lat;
            }
            let mut buf = call.arg_times;
            buf.clear();
            self.call_pool.push(buf);
        }
        self.ret_scratch = ret_times;
    }

    fn on_region_enter(&mut self, region: RegionId) {
        self.push_region(region);
    }

    fn on_region_exit(&mut self, region: RegionId) {
        self.pop_region(region);
    }

    fn on_cd_push(&mut self, cond: ValueId) {
        let (lo, hi) = self.tracked_range();
        let mut entry = self.cd_pool.pop().unwrap_or_default();
        entry.clear();
        entry.resize(hi, 0);
        let frame = self.frames.last().expect("shadow frame");
        for (d, slot) in entry.iter_mut().enumerate().take(hi).skip(lo) {
            let cond_t = frame.read(cond.index(), d - lo, self.region_tags[d]);
            // Control times only increase: fold in the enclosing top.
            *slot = cond_t.max(self.cd_time(d));
        }
        self.cd_stack.push(entry);
    }

    fn on_cd_pop(&mut self) {
        let entry = self.cd_stack.pop().expect("cd stack underflow");
        self.cd_pool.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kremlin_interp::{run_with_hook, MachineConfig};
    use kremlin_ir::compile;

    fn profile_src(src: &str) -> (kremlin_ir::CompiledUnit, Dictionary, ProfilerStats) {
        let unit = compile(src, "t.kc").expect("compiles");
        let mut p = Profiler::new(&unit.module, HcpaConfig::default());
        run_with_hook(&unit.module, &mut p, MachineConfig::default()).expect("runs");
        let (dict, stats) = p.finish();
        (unit, dict, stats)
    }

    /// Work-weighted average SP of a labeled region.
    fn sp_of(unit: &kremlin_ir::CompiledUnit, dict: &Dictionary, label: &str) -> f64 {
        let region = unit.module.regions.by_label(label).expect("region exists");
        let counts = dict.instance_counts();
        let sp = dict.self_parallelism();
        let mut num = 0.0;
        let mut den = 0.0;
        for (id, e) in dict.iter() {
            if e.static_id == region.0 && counts[id.index()] > 0 {
                let w = (counts[id.index()] * e.work.max(1)) as f64;
                num += w * sp[id.index()];
                den += w;
            }
        }
        assert!(den > 0.0, "region {label} never executed");
        num / den
    }

    #[test]
    fn doall_loop_sp_tracks_iteration_count() {
        let (unit, dict, _) = profile_src(
            "float a[64]; float b[64];\n\
             int main() {\n\
               for (int i = 0; i < 64; i++) { a[i] = (float) i; }\n\
               for (int i = 0; i < 64; i++) { b[i] = a[i] * 2.0 + 1.0; }\n\
               return (int) b[63];\n\
             }",
        );
        let sp = sp_of(&unit, &dict, "main#L1");
        assert!(sp > 50.0, "DOALL loop should have SP ≈ 64, got {sp}");
    }

    #[test]
    fn serial_chain_loop_sp_is_low() {
        // x[i] = x[i-1] * 1.5 + 1.0 is a true recurrence: serial.
        let (unit, dict, _) = profile_src(
            "float x[64];\n\
             int main() {\n\
               x[0] = 1.0;\n\
               for (int i = 1; i < 64; i++) { x[i] = x[i - 1] * 1.5 + 1.0; }\n\
               return (int) x[63];\n\
             }",
        );
        let sp = sp_of(&unit, &dict, "main#L0");
        assert!(sp < 3.0, "serial recurrence should have SP ≈ 1, got {sp}");
    }

    #[test]
    fn reduction_loop_is_parallel_after_breaking() {
        let (unit, dict, _) = profile_src(
            "float a[64];\n\
             int main() {\n\
               for (int i = 0; i < 64; i++) { a[i] = (float) i; }\n\
               float s = 0.0;\n\
               for (int i = 0; i < 64; i++) { s += a[i] * a[i]; }\n\
               return (int) s;\n\
             }",
        );
        let sp = sp_of(&unit, &dict, "main#L1");
        assert!(sp > 40.0, "reduction loop should be near-DOALL after breaking, got {sp}");
    }

    #[test]
    fn ablation_disabling_breaking_serializes_reduction() {
        let src = "float a[64];\n\
             int main() {\n\
               for (int i = 0; i < 64; i++) { a[i] = (float) i; }\n\
               float s = 0.0;\n\
               for (int i = 0; i < 64; i++) { s += a[i] * a[i]; }\n\
               return (int) s;\n\
             }";
        let unit = compile(src, "t.kc").unwrap();
        let mut p = Profiler::new(
            &unit.module,
            HcpaConfig { break_carried_deps: false, ..HcpaConfig::default() },
        );
        run_with_hook(&unit.module, &mut p, MachineConfig::default()).unwrap();
        let (dict, _) = p.finish();
        let sp = sp_of(&unit, &dict, "main#L1");
        assert!(sp < 8.0, "without breaking, the accumulator chain serializes: {sp}");
        // Even the init loop serializes through `i++` itself.
        let sp0 = sp_of(&unit, &dict, "main#L0");
        assert!(sp0 < 8.0, "induction chain should serialize loop 0: {sp0}");
    }

    #[test]
    fn fig2_only_innermost_loop_is_parallel() {
        // The paper's Figure 2 pattern: outer loops carry a serializing
        // min-tracking dependency through `features`, the innermost loop's
        // iterations are independent... in the paper it is the innermost
        // that is parallel while traditional CPA would report parallelism
        // in the outer loops too. We model the structure: outer loop walks
        // rows serially updating a running value; inner loop is DOALL.
        let (unit, dict, _) = profile_src(
            "float img[16][16]; float acc[16];\n\
             int main() {\n\
               for (int i = 0; i < 16; i++) { for (int j = 0; j < 16; j++) { img[i][j] = (float)(i + j); } }\n\
               float carry = 0.0;\n\
               for (int i = 0; i < 16; i++) {\n\
                 carry = carry * 0.5 + 1.0;\n\
                 for (int j = 0; j < 16; j++) { acc[j] = img[i][j] * 2.0 + carry; }\n\
               }\n\
               return (int) acc[3];\n\
             }",
        );
        // Loop labels are lexical: L0/L1 are the init nest, L2 is the
        // carry-serialized outer loop, L3 the DOALL inner loop.
        let outer = sp_of(&unit, &dict, "main#L2");
        let inner = sp_of(&unit, &dict, "main#L3");
        assert!(inner > 10.0, "inner loop is DOALL: {inner}");
        assert!(outer < 4.0, "outer loop serialized by recurrence: {outer}");
        // Total parallelism at the outer loop *would* look high (it
        // contains the parallel inner loop) — HCPA localizes it instead.
        let region = unit.module.regions.by_label("main#L2").unwrap();
        let tp = dict.total_parallelism();
        let counts = dict.instance_counts();
        let mut max_tp = 0.0f64;
        for (id, e) in dict.iter() {
            if e.static_id == region.0 && counts[id.index()] > 0 {
                max_tp = max_tp.max(tp[id.index()]);
            }
        }
        assert!(
            max_tp > outer * 2.0,
            "total parallelism ({max_tp}) hides the serialization that SP ({outer}) exposes"
        );
    }

    #[test]
    fn function_regions_summarize_calls() {
        let (unit, dict, stats) = profile_src(
            "float square(float x) { return x * x; }\n\
             int main() { float s = 0.0; for (int i = 0; i < 8; i++) { s += square((float) i); } return (int) s; }",
        );
        let sq = unit.module.regions.by_label("square").unwrap();
        let counts = dict.instance_counts();
        let total: u64 = dict
            .iter()
            .filter(|(_, e)| e.static_id == sq.0)
            .map(|(id, _)| counts[id.index()])
            .sum();
        assert_eq!(total, 8, "square called 8 times");
        assert!(stats.dynamic_regions > 16);
        assert!(stats.max_depth >= 4); // main > loop > body > square
    }

    #[test]
    fn control_dependence_serializes_dependent_branches() {
        // Each iteration's condition depends on a serial accumulator; the
        // work under the branch is control-dependent on it, so the loop
        // cannot look DOALL even though the branch bodies touch disjoint
        // data.
        let (unit, dict, _) = profile_src(
            "float out[64];\n\
             int main() {\n\
               float t = 1.0;\n\
               for (int i = 0; i < 64; i++) {\n\
                 t = t * 1.000001 + 0.5;\n\
                 if (t > (float) i) { out[i] = t * 2.0; } else { out[i] = 1.0; }\n\
               }\n\
               return (int) out[10];\n\
             }",
        );
        let sp = sp_of(&unit, &dict, "main#L0");
        assert!(sp < 6.0, "control dependence on serial value must serialize: {sp}");
    }

    #[test]
    fn nested_doall_both_levels_parallel() {
        let (unit, dict, _) = profile_src(
            "float m[16][16];\n\
             int main() {\n\
               for (int i = 0; i < 16; i++) {\n\
                 for (int j = 0; j < 16; j++) { m[i][j] = (float)(i * j) * 0.5; }\n\
               }\n\
               return (int) m[3][4];\n\
             }",
        );
        let outer = sp_of(&unit, &dict, "main#L0");
        let inner = sp_of(&unit, &dict, "main#L1");
        assert!(outer > 10.0, "outer DOALL: {outer}");
        assert!(inner > 10.0, "inner DOALL: {inner}");
    }

    #[test]
    fn work_is_conserved_down_the_tree() {
        let (_, dict, _) = profile_src(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i * i; } return s; }\n\
             int main() { int t = 0; for (int k = 1; k < 9; k++) { t += f(k * 8); } return t; }",
        );
        for (_, e) in dict.iter() {
            let child_work: u64 = e.children.iter().map(|(c, n)| n * dict.entry(*c).work).sum();
            assert!(
                e.work >= child_work,
                "parent work {} < sum of child work {child_work}",
                e.work
            );
            assert!(e.cp <= e.work.max(1), "cp {} exceeds work {}", e.cp, e.work);
        }
    }

    #[test]
    fn sp_at_least_one_everywhere() {
        let (_, dict, _) = profile_src(
            "int main() { int s = 0; for (int i = 0; i < 20; i++) { if (i % 3) { s += i; } else { s -= 1; } } return s; }",
        );
        for sp in dict.self_parallelism() {
            assert!(sp >= 0.99, "SP must be ≥ 1, got {sp}");
        }
    }

    #[test]
    fn deep_recursion_beyond_window_is_safe() {
        let src = "int f(int n) { if (n <= 0) { return 0; } return 1 + f(n - 1); }\n\
                   int main() { return f(100); }";
        let unit = compile(src, "t.kc").unwrap();
        let mut p = Profiler::new(&unit.module, HcpaConfig { window: 8, ..HcpaConfig::default() });
        let r = run_with_hook(&unit.module, &mut p, MachineConfig::default()).unwrap();
        assert_eq!(r.exit, 100);
        let (dict, stats) = p.finish();
        assert!(stats.max_depth > 8);
        assert!(dict.root().is_some());
    }

    /// One dictionary entry, flattened for comparison: `(static_id, work,
    /// cp, children)`.
    type EntryShape = (u32, u64, u64, Vec<(usize, u64)>);

    /// Flattens a dictionary into comparable tuples, in entry order.
    fn dict_shape(d: &Dictionary) -> Vec<EntryShape> {
        d.iter()
            .map(|(_, e)| {
                (
                    e.static_id,
                    e.work,
                    e.cp,
                    e.children.iter().map(|(c, n)| (c.index(), *n)).collect(),
                )
            })
            .collect()
    }

    /// The packed backend must produce bit-identical profiles to the
    /// pre-optimization baseline backend, config for config.
    #[test]
    fn packed_backend_matches_baseline_backend() {
        let srcs = [
            "float a[64]; float b[64];\n\
             int main() {\n\
               for (int i = 0; i < 64; i++) { a[i] = (float) i; }\n\
               float s = 0.0;\n\
               for (int i = 0; i < 64; i++) { if (a[i] > 10.0) { s += a[i]; } else { b[i] = s; } }\n\
               return (int) s;\n\
             }",
            "float m[12][12];\n\
             float f(float x) { float t = 0.0; for (int h = 0; h < 4; h++) { t += x * 0.5 + (float) h; } return t; }\n\
             int main() {\n\
               for (int i = 0; i < 12; i++) { for (int j = 0; j < 12; j++) { m[i][j] = f((float)(i + j)); } }\n\
               return (int) m[3][4];\n\
             }",
        ];
        for src in srcs {
            let unit = compile(src, "t.kc").unwrap();
            for config in [
                HcpaConfig::default(),
                HcpaConfig { window: 3, ..HcpaConfig::default() },
                HcpaConfig { window: 4, min_depth: 2, ..HcpaConfig::default() },
                HcpaConfig { break_carried_deps: false, ..HcpaConfig::default() },
            ] {
                let mut p = Profiler::new(&unit.module, config);
                run_with_hook(&unit.module, &mut p, MachineConfig::default()).unwrap();
                let (dict_p, stats_p) = p.finish();

                let mut b = BaselineProfiler::new(&unit.module, config);
                run_with_hook(&unit.module, &mut b, MachineConfig::default()).unwrap();
                let (dict_b, stats_b) = b.finish();

                assert_eq!(dict_shape(&dict_p), dict_shape(&dict_b));
                assert_eq!(dict_p.root().map(|r| r.index()), dict_b.root().map(|r| r.index()));
                assert_eq!(stats_p.instr_events, stats_b.instr_events);
                assert_eq!(stats_p.dynamic_regions, stats_b.dynamic_regions);
                assert_eq!(stats_p.max_depth, stats_b.max_depth);
                assert_eq!(stats_p.region_min_depth, stats_b.region_min_depth);
            }
        }
    }
}
