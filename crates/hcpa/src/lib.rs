//! # kremlin-hcpa — hierarchical critical path analysis
//!
//! The core contribution of the Kremlin paper (PLDI 2011): run a critical
//! path analysis **per dynamic region nesting level** so parallelism can be
//! localized to specific loops and functions, and compute
//! **self-parallelism**
//!
//! ```text
//! SP(R) = (Σ_k cp(child_k(R)) + SW(R)) / cp(R)
//! ```
//!
//! which factors out the parallelism contributed by a region's children —
//! the parallel analogue of gprof's *self time*.
//!
//! The pieces, mirroring the paper's §4:
//!
//! * [`cost`] — instruction latency model (availability time arithmetic);
//! * [`shadow`] — multi-level shadow memory and shadow register tables,
//!   with region-instance **tags** to prevent cross-instance reuse (§4.2);
//! * [`profiler`] — the [`kremlin_interp::ExecHook`] implementation:
//!   per-depth time propagation, control-dependence stack, induction/
//!   reduction breaking, and online dictionary compression (§4.1, §4.4);
//! * [`profile`] — per-static-region aggregation ([`RegionStats`]:
//!   self-parallelism, coverage, DOALL classification) computed in the
//!   compressed domain.
//!
//! End-to-end:
//!
//! ```
//! use kremlin_hcpa::{profile_unit, HcpaConfig};
//! let unit = kremlin_ir::compile(
//!     "float a[32];\n\
//!      int main() { for (int i = 0; i < 32; i++) { a[i] = (float) i * 2.0; } return 0; }",
//!     "demo.kc",
//! ).unwrap();
//! let outcome = profile_unit(&unit, HcpaConfig::default())?;
//! let loop_region = unit.module.regions.by_label("main#L0").unwrap();
//! let stats = outcome.profile.stats(loop_region).unwrap();
//! assert!(stats.is_doall && stats.self_p > 20.0);
//! # Ok::<(), kremlin_interp::InterpError>(())
//! ```

pub mod cost;
pub mod parallel;
pub mod profile;
pub mod profiler;
pub mod seed;
pub mod shadow;

pub use cost::CostModel;
pub use parallel::{
    plan_shards, plan_shards_weighted, profile_decoded_parallel, profile_trace_parallel,
    profile_unit_parallel, shard_plan_cost, ParallelConfig, ReplayStrategy, ShardSpec,
};
pub use profile::{ParallelismProfile, RegionStats};
pub use profiler::{BaselineProfiler, HcpaConfig, Profiler, ProfilerCore, ProfilerStats};
pub use seed::{profile_unit_seed, SeedProfiler};

use kremlin_interp::trace::{DecodedTrace, Trace, TraceError};
use kremlin_interp::{InterpError, MachineConfig, RunResult};
use kremlin_ir::CompiledUnit;

/// Everything produced by one profiled run.
#[derive(Debug)]
pub struct ProfileOutcome {
    /// The aggregated per-region parallelism profile (owns the compressed
    /// dictionary).
    pub profile: ParallelismProfile,
    /// Profiler statistics (shadow footprint, dynamic region count, ...).
    pub stats: ProfilerStats,
    /// The program's own result (exit code, instruction count).
    pub run: RunResult,
}

/// Compiles-in the profiler and runs `main`: the equivalent of executing a
/// Kremlin-instrumented binary (paper Figure 4).
///
/// # Errors
///
/// Propagates interpreter failures ([`InterpError`]).
pub fn profile_unit(
    unit: &CompiledUnit,
    config: HcpaConfig,
) -> Result<ProfileOutcome, InterpError> {
    profile_unit_with_machine(unit, config, MachineConfig::default())
}

/// [`profile_unit`] with explicit interpreter limits.
///
/// # Errors
///
/// Propagates interpreter failures ([`InterpError`]).
pub fn profile_unit_with_machine(
    unit: &CompiledUnit,
    config: HcpaConfig,
    machine: MachineConfig,
) -> Result<ProfileOutcome, InterpError> {
    let _span = kremlin_obs::span("shadow");
    let mut profiler = Profiler::new(&unit.module, config);
    let run = kremlin_interp::run_with_hook(&unit.module, &mut profiler, machine)?;
    let (dict, stats) = profiler.finish();
    let _build = kremlin_obs::span("profile.build");
    let mut profile =
        ParallelismProfile::build(&unit.module.regions, dict, &unit.reduction_loops());
    profile.set_source_name(&unit.module.source_name);
    Ok(ProfileOutcome { profile, stats, run })
}

/// Profiles a *recorded* execution: replays `trace` into the HCPA
/// profiler instead of re-interpreting the program. The replayed event
/// stream is observably identical to live execution, so the outcome is
/// [`identical_stats`](ParallelismProfile::identical_stats) to
/// [`profile_unit`] with the same `config` — this is the trace-consuming
/// entry point the record-once/replay-many workflow builds on.
///
/// # Errors
///
/// [`TraceError::ModuleMismatch`] when the trace was not recorded from
/// `unit`'s module; [`TraceError::Corrupt`] for damaged event streams.
pub fn profile_trace(
    unit: &CompiledUnit,
    trace: &Trace,
    config: HcpaConfig,
) -> Result<ProfileOutcome, TraceError> {
    let _span = kremlin_obs::span("shadow");
    let mut profiler = Profiler::new(&unit.module, config);
    let run = kremlin_interp::trace::replay(trace, &unit.module, &mut profiler)?;
    let (dict, stats) = profiler.finish();
    let _build = kremlin_obs::span("profile.build");
    let mut profile =
        ParallelismProfile::build(&unit.module.regions, dict, &unit.reduction_loops());
    profile.set_source_name(&unit.module.source_name);
    Ok(ProfileOutcome { profile, stats, run })
}

/// [`profile_trace`] over an already-decoded trace: replays the
/// [`DecodedTrace`] arena into the HCPA profiler with zero varint work
/// per event. The fired event sequence is bit-identical to the
/// streaming path, so the outcome is
/// [`identical_stats`](ParallelismProfile::identical_stats) to both
/// [`profile_trace`] and [`profile_unit`] with the same `config` — this
/// is what decode-once sharded collection
/// ([`profile_decoded_parallel`]) runs per worker.
///
/// # Errors
///
/// [`TraceError::ModuleMismatch`] when the trace was not decoded from
/// `unit`'s module.
pub fn profile_decoded(
    unit: &CompiledUnit,
    decoded: &DecodedTrace,
    config: HcpaConfig,
) -> Result<ProfileOutcome, TraceError> {
    let _span = kremlin_obs::span("shadow");
    let mut profiler = Profiler::new(&unit.module, config);
    let run = kremlin_interp::trace::replay_decoded(decoded, &unit.module, &mut profiler)?;
    let (dict, stats) = profiler.finish();
    let _build = kremlin_obs::span("profile.build");
    let mut profile =
        ParallelismProfile::build(&unit.module.regions, dict, &unit.reduction_loops());
    profile.set_source_name(&unit.module.source_name);
    Ok(ProfileOutcome { profile, stats, run })
}

/// Profiles `unit` in depth slices of the given `window` and stitches the
/// results — the paper's §4.2 workflow for bounding shadow-state cost and
/// collecting deep programs in (potentially parallel) pieces.
///
/// Records the execution once, then replays `ceil(max_depth /
/// (window-1))` depth slices over the shared trace. The returned profile
/// is planning-ready; see [`ParallelismProfile::stitch`] for the
/// simulator caveat.
///
/// # Errors
///
/// Propagates interpreter failures from the recording pass.
///
/// # Panics
///
/// Panics if `window < 2`.
pub fn profile_unit_sliced(
    unit: &CompiledUnit,
    window: usize,
) -> Result<ProfileOutcome, InterpError> {
    assert!(window >= 2, "window must cover a region and its children");
    let stride = window - 1;
    let trace = kremlin_interp::trace::record(&unit.module, MachineConfig::default())?;
    let slice = |lo: usize| {
        profile_trace(unit, &trace, HcpaConfig { window, min_depth: lo, ..HcpaConfig::default() })
            .expect("a freshly recorded trace replays")
    };
    let first = slice(0);
    let max_depth = first.stats.max_depth;
    let mut slices = vec![first.profile.clone()];
    let mut lo = stride;
    while lo < max_depth {
        slices.push(slice(lo).profile);
        lo += stride;
    }
    let stitched = ParallelismProfile::stitch(&slices, window);
    Ok(ProfileOutcome { profile: stitched, stats: first.stats, run: first.run })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_run_matches_plain_run() {
        let unit = kremlin_ir::compile(
            "int main() { int s = 0; for (int i = 0; i < 33; i++) { s += i * i; } return s % 97; }",
            "t.kc",
        )
        .unwrap();
        let plain = kremlin_interp::run(&unit.module).unwrap();
        let out = profile_unit(&unit, HcpaConfig::default()).unwrap();
        assert_eq!(plain.exit, out.run.exit, "profiling must not change semantics");
        assert_eq!(plain.instrs_executed, out.run.instrs_executed);
    }

    #[test]
    fn sliced_profiling_matches_full_window() {
        // Deeply nested program: main > L > body > L > body > f > L > body
        let unit = kremlin_ir::compile(
            "float acc[16];\n\
             float work(float x) { float s = 0.0; for (int k = 0; k < 6; k++) { s += sqrt(x + (float) k); } return s; }\n\
             int main() {\n\
               for (int i = 0; i < 6; i++) {\n\
                 for (int j = 0; j < 6; j++) {\n\
                   acc[j] += work((float) (i * j));\n\
                 }\n\
               }\n\
               return (int) acc[3];\n\
             }",
            "deep.kc",
        )
        .unwrap();
        let full = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let sliced = profile_unit_sliced(&unit, 3).unwrap();
        assert!(full.stats.max_depth > 3, "program must exceed one slice");
        for s in full.profile.iter() {
            let t = sliced
                .profile
                .stats(s.region)
                .unwrap_or_else(|| panic!("{} missing from stitched profile", s.label));
            assert_eq!(s.total_work, t.total_work, "{}", s.label);
            assert_eq!(s.instances, t.instances, "{}", s.label);
            assert!(
                (s.self_p - t.self_p).abs() < 1e-6,
                "{}: SP {} (full) vs {} (stitched)",
                s.label,
                s.self_p,
                t.self_p
            );
        }
    }

    #[test]
    fn outcome_has_consistent_root() {
        let unit = kremlin_ir::compile("int main() { return 3; }", "t.kc").unwrap();
        let out = profile_unit(&unit, HcpaConfig::default()).unwrap();
        let main = unit.module.regions.by_label("main").unwrap();
        assert_eq!(out.profile.root, Some(main));
        assert_eq!(out.stats.dynamic_regions, 1);
    }
}
