//! The pre-optimization HCPA profiler, vendored verbatim.
//!
//! This is the profiler and shadow state exactly as they stood before the
//! hot-path overhaul (see the crate docs and `DESIGN.md`): a **depth-major**
//! per-instruction loop that re-resolves the shadow location once per
//! tracked depth (one page-hash lookup per depth for memory operands),
//! accumulates work into every active region on every instruction
//! (O(depth) instead of O(1)), and allocates fresh vectors on every call
//! and control-dependence push.
//!
//! It is kept — frozen — for two purposes:
//!
//! * the **benchmark baseline**: `BENCH_profiler.json` reports speedups of
//!   the optimized serial pass and of depth-sharded collection against
//!   this implementation, so the numbers measure the PR's actual delta
//!   rather than a strawman;
//! * a **differential reference**: [`SeedProfiler`] and the optimized
//!   [`crate::Profiler`] are independent implementations of the same
//!   specification, and tests assert their profiles are bit-identical.
//!
//! Do not "improve" this module; that would silently invalidate the
//! baseline.

use crate::profile::ParallelismProfile;
use crate::profiler::{HcpaConfig, ProfilerStats};
use crate::ProfileOutcome;
use kremlin_compress::{Dictionary, EntryId};
use kremlin_interp::{CallCtx, ExecHook, InstrCtx, InterpError, MachineConfig, RetCtx};
use kremlin_ir::instr::InstrKind;
use kremlin_ir::{CompiledUnit, FuncId, Module, RegionId, ValueId};
use std::collections::HashMap;

/// Slots per shadow-memory page (power of two). Matches the optimized
/// store so footprint numbers stay comparable.
const PAGE_SLOTS: u64 = 1024;

/// The seed per-frame shadow register table: split `tags`/`times` arrays
/// indexed `value * window + depth`.
#[derive(Debug)]
pub struct SeedShadowRegs {
    window: usize,
    tags: Vec<u64>,
    times: Vec<u64>,
}

impl SeedShadowRegs {
    /// Creates a table for `n_values` SSA values with `window` depth slots.
    #[must_use]
    pub fn new(n_values: usize, window: usize) -> Self {
        SeedShadowRegs {
            window,
            tags: vec![0; n_values * window],
            times: vec![0; n_values * window],
        }
    }

    /// Availability time of `value` at `depth`, or 0 on tag mismatch or
    /// out-of-window depth.
    #[inline]
    #[must_use]
    pub fn read(&self, value: usize, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let i = value * self.window + depth;
        if self.tags[i] == tag {
            self.times[i]
        } else {
            0
        }
    }

    /// Records `time` for `value` at `depth` under `tag`.
    #[inline]
    pub fn write(&mut self, value: usize, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        let i = value * self.window + depth;
        self.tags[i] = tag;
        self.times[i] = time;
    }
}

/// The seed two-level shadow memory: every `read`/`write` hashes the page
/// number — once **per depth** in the profiler's depth-major loop.
#[derive(Debug, Default)]
pub struct SeedShadowMemory {
    window: usize,
    pages: HashMap<u64, SeedPage>,
    pages_allocated: u64,
}

#[derive(Debug)]
struct SeedPage {
    tags: Vec<u64>,
    times: Vec<u64>,
}

impl SeedShadowMemory {
    /// Creates an empty shadow memory with `window` depth slots per
    /// location.
    #[must_use]
    pub fn new(window: usize) -> Self {
        SeedShadowMemory { window, pages: HashMap::new(), pages_allocated: 0 }
    }

    /// Availability time of the value stored at `addr`, observed at
    /// `depth`, or 0 on tag mismatch, unallocated page, or out-of-window
    /// depth.
    #[must_use]
    pub fn read(&self, addr: u64, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let Some(page) = self.pages.get(&(addr / PAGE_SLOTS)) else { return 0 };
        let i = (addr % PAGE_SLOTS) as usize * self.window + depth;
        if page.tags[i] == tag {
            page.times[i]
        } else {
            0
        }
    }

    /// Records `time` for `addr` at `depth` under `tag`, allocating the
    /// page on first touch.
    pub fn write(&mut self, addr: u64, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        let window = self.window;
        let pages_allocated = &mut self.pages_allocated;
        let page = self.pages.entry(addr / PAGE_SLOTS).or_insert_with(|| {
            *pages_allocated += 1;
            SeedPage {
                tags: vec![0; PAGE_SLOTS as usize * window],
                times: vec![0; PAGE_SLOTS as usize * window],
            }
        });
        let i = (addr % PAGE_SLOTS) as usize * self.window + depth;
        page.tags[i] = tag;
        page.times[i] = time;
    }

    /// Number of distinct pages ever allocated.
    #[must_use]
    pub fn pages_allocated(&self) -> u64 {
        self.pages_allocated
    }

    /// Shadow-memory footprint in bytes (split arrays: 16 bytes per slot).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SLOTS * self.window as u64 * 16
    }
}

struct ActiveRegion {
    static_id: RegionId,
    tag: u64,
    work: u64,
    cp: u64,
    children: HashMap<EntryId, u64>,
}

struct CallRecord {
    call_value: ValueId,
    /// Per argument: availability time per caller depth.
    arg_times: Vec<Vec<u64>>,
}

/// The seed profiler. Feed it to [`kremlin_interp::run_with_hook`], then
/// call [`SeedProfiler::finish`].
pub struct SeedProfiler<'m> {
    module: &'m Module,
    config: HcpaConfig,
    dict: Dictionary,
    regions: Vec<ActiveRegion>,
    cd_stack: Vec<Vec<u64>>,
    mem: SeedShadowMemory,
    frames: Vec<SeedShadowRegs>,
    calls: Vec<CallRecord>,
    next_tag: u64,
    stats: ProfilerStats,
    ops: Vec<ValueId>,
}

impl<'m> SeedProfiler<'m> {
    /// Creates a profiler for `module`.
    #[must_use]
    pub fn new(module: &'m Module, config: HcpaConfig) -> Self {
        SeedProfiler {
            module,
            config,
            dict: Dictionary::new(),
            regions: Vec::new(),
            cd_stack: Vec::new(),
            mem: SeedShadowMemory::new(config.window),
            frames: Vec::new(),
            calls: Vec::new(),
            next_tag: 1,
            stats: ProfilerStats {
                region_min_depth: vec![None; module.regions.len()],
                ..ProfilerStats::default()
            },
            ops: Vec::new(),
        }
    }

    /// Consumes the profiler, returning the compression dictionary and run
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if regions are still open (the run did not complete).
    #[must_use]
    pub fn finish(mut self) -> (Dictionary, ProfilerStats) {
        assert!(self.regions.is_empty(), "profiling finished with open regions");
        self.stats.shadow_pages = self.mem.pages_allocated();
        self.stats.shadow_live_pages = self.mem.pages.len() as u64;
        self.stats.shadow_bytes = self.mem.footprint_bytes();
        (self.dict, self.stats)
    }

    fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn push_region(&mut self, static_id: RegionId) {
        let tag = self.fresh_tag();
        let depth = self.regions.len();
        let slot = &mut self.stats.region_min_depth[static_id.index()];
        *slot = Some(slot.map_or(depth, |d| d.min(depth)));
        self.regions.push(ActiveRegion {
            static_id,
            tag,
            work: 0,
            cp: 0,
            children: HashMap::new(),
        });
        self.stats.max_depth = self.stats.max_depth.max(self.regions.len());
    }

    fn pop_region(&mut self, expected: RegionId) -> EntryId {
        let r = self.regions.pop().expect("region stack underflow");
        debug_assert_eq!(r.static_id, expected, "mismatched region exit");
        let mut children: Vec<(EntryId, u64)> = r.children.into_iter().collect();
        children.sort_by_key(|(c, _)| *c);
        let id = self.dict.intern(r.static_id.0, r.work, r.cp, children);
        self.stats.dynamic_regions += 1;
        match self.regions.last_mut() {
            Some(parent) => {
                *parent.children.entry(id).or_insert(0) += 1;
            }
            None => self.dict.set_root(id),
        }
        id
    }

    #[inline]
    fn cd_time(&self, depth: usize) -> u64 {
        match self.cd_stack.last() {
            Some(v) => v.get(depth).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// The tracked absolute-depth range `[lo, hi)`.
    #[inline]
    fn tracked_range(&self) -> (usize, usize) {
        let lo = self.config.min_depth.min(self.regions.len());
        let hi = self.regions.len().min(self.config.min_depth + self.config.window);
        (lo, hi)
    }
}

impl ExecHook for SeedProfiler<'_> {
    fn on_instr(&mut self, ctx: &InstrCtx<'_>) {
        self.stats.instr_events += 1;
        let lat = self.config.cost.latency(ctx.kind);

        // Work accrues at every active depth (not just tracked ones):
        // `work(R)` includes all nested instructions.
        for r in &mut self.regions {
            r.work += lat;
        }

        // Gather value operands.
        self.ops.clear();
        match ctx.kind {
            InstrKind::Phi { .. } => {
                if let Some(src) = ctx.phi_source {
                    self.ops.push(src);
                }
            }
            kind => kind.operands(&mut self.ops),
        }
        let break_on = if self.config.break_carried_deps {
            ctx.func.value(ctx.value).break_dep_on
        } else {
            None
        };

        let is_store = matches!(ctx.kind, InstrKind::Store { .. });
        let is_param = matches!(ctx.kind, InstrKind::Param(_));
        let (lo, hi) = self.tracked_range();
        for d in lo..hi {
            let tag = self.regions[d].tag;
            let mut t = self.cd_time(d);
            if is_param {
                // Parameter times come from the call site's argument times
                // (depths beyond the caller's depth default to 0).
                if let (InstrKind::Param(i), Some(call)) = (ctx.kind, self.calls.last()) {
                    t = t.max(call.arg_times[*i as usize].get(d).copied().unwrap_or(0));
                }
            } else {
                let frame = self.frames.last().expect("shadow frame");
                for &op in &self.ops {
                    if Some(op) == break_on {
                        continue;
                    }
                    t = t.max(frame.read(op.index(), d - lo, tag));
                }
                if let (InstrKind::Load(_), Some(addr)) = (ctx.kind, ctx.mem_addr) {
                    t = t.max(self.mem.read(addr, d - lo, tag));
                }
            }
            t += lat;
            if is_store {
                let addr = ctx.mem_addr.expect("store has an address");
                self.mem.write(addr, d - lo, tag, t);
            } else {
                let frame = self.frames.last_mut().expect("shadow frame");
                frame.write(ctx.value.index(), d - lo, tag, t);
            }
            let r = &mut self.regions[d];
            r.cp = r.cp.max(t);
        }
    }

    fn on_call(&mut self, ctx: &CallCtx<'_>) {
        let (lo, hi) = self.tracked_range();
        let frame = self.frames.last().expect("caller shadow frame");
        // Argument-time vectors are indexed by absolute depth; untracked
        // depths stay zero.
        let arg_times = ctx
            .args
            .iter()
            .map(|a| {
                let mut v = vec![0u64; hi];
                for (d, slot) in v.iter_mut().enumerate().take(hi).skip(lo) {
                    *slot = frame.read(a.index(), d - lo, self.regions[d].tag);
                }
                v
            })
            .collect();
        self.calls.push(CallRecord { call_value: ctx.call_value, arg_times });
    }

    fn on_function_enter(&mut self, func: FuncId, region: RegionId) {
        self.push_region(region);
        let f = self.module.func(func);
        self.frames.push(SeedShadowRegs::new(f.values.len(), self.config.window));
    }

    fn on_return(&mut self, ctx: &RetCtx) {
        // Capture the returned value's times at the caller's depths before
        // tearing the callee down. The callee's own depth is the current
        // innermost region.
        let (lo, hi) = self.tracked_range();
        let caller_hi = hi.min(self.regions.len() - 1);
        let ret_times: Vec<u64> = match ctx.returned {
            Some(v) => {
                let frame = self.frames.last().expect("callee shadow frame");
                let mut v_times = vec![0u64; caller_hi];
                for (d, slot) in v_times.iter_mut().enumerate().take(caller_hi).skip(lo) {
                    *slot = frame.read(v.index(), d - lo, self.regions[d].tag);
                }
                v_times
            }
            None => vec![0; caller_hi],
        };

        self.pop_region(ctx.region);
        self.frames.pop();

        if let Some(call) = self.calls.pop() {
            let lat = self.config.cost.call;
            let (lo, hi) = self.tracked_range();
            let frame = self.frames.last_mut().expect("caller shadow frame");
            for d in lo..hi {
                let tag = self.regions[d].tag;
                let t = ret_times.get(d).copied().unwrap_or(0) + lat;
                frame.write(call.call_value.index(), d - lo, tag, t);
                let r = &mut self.regions[d];
                r.cp = r.cp.max(t);
                r.work += lat;
            }
        }
    }

    fn on_region_enter(&mut self, region: RegionId) {
        self.push_region(region);
    }

    fn on_region_exit(&mut self, region: RegionId) {
        self.pop_region(region);
    }

    fn on_cd_push(&mut self, cond: ValueId) {
        let (lo, hi) = self.tracked_range();
        let frame = self.frames.last().expect("shadow frame");
        let mut entry = vec![0u64; hi];
        for (d, slot) in entry.iter_mut().enumerate().take(hi).skip(lo) {
            let cond_t = frame.read(cond.index(), d - lo, self.regions[d].tag);
            // Control times only increase: fold in the enclosing top.
            *slot = cond_t.max(self.cd_time(d));
        }
        self.cd_stack.push(entry);
    }

    fn on_cd_pop(&mut self) {
        self.cd_stack.pop().expect("cd stack underflow");
    }
}

/// [`crate::profile_unit_with_machine`] on the frozen seed profiler.
///
/// # Errors
///
/// Propagates interpreter failures ([`InterpError`]).
pub fn profile_unit_seed(
    unit: &CompiledUnit,
    config: HcpaConfig,
    machine: MachineConfig,
) -> Result<ProfileOutcome, InterpError> {
    let mut profiler = SeedProfiler::new(&unit.module, config);
    let run = kremlin_interp::run_with_hook(&unit.module, &mut profiler, machine)?;
    let (dict, stats) = profiler.finish();
    let mut profile =
        ParallelismProfile::build(&unit.module.regions, dict, &unit.reduction_loops());
    profile.set_source_name(&unit.module.source_name);
    Ok(ProfileOutcome { profile, stats, run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profile_unit, HcpaConfig};

    /// The optimized profiler and the frozen seed profiler are independent
    /// implementations of the same specification: their profiles must be
    /// bit-identical, instruction counts and all.
    #[test]
    fn optimized_profiler_matches_seed_profiler() {
        let srcs = [
            "float acc[16];\n\
             float work(float x) { float s = 0.0; for (int k = 0; k < 6; k++) { s += sqrt(x + (float) k); } return s; }\n\
             int main() {\n\
               for (int i = 0; i < 6; i++) {\n\
                 for (int j = 0; j < 6; j++) { acc[j] += work((float) (i * j)); }\n\
               }\n\
               return (int) acc[3];\n\
             }",
            "float a[64];\n\
             int main() {\n\
               for (int i = 0; i < 64; i++) { a[i] = (float) i; }\n\
               float s = 0.0;\n\
               for (int i = 0; i < 64; i++) { s += a[i] * a[i]; }\n\
               if (s > 10.0) { a[0] = s; } else { a[0] = 0.0; }\n\
               return (int) a[0] % 97;\n\
             }",
        ];
        let configs = [
            HcpaConfig::default(),
            HcpaConfig { window: 3, ..HcpaConfig::default() },
            HcpaConfig { window: 4, min_depth: 3, ..HcpaConfig::default() },
            HcpaConfig { break_carried_deps: false, ..HcpaConfig::default() },
        ];
        for src in srcs {
            let unit = kremlin_ir::compile(src, "t.kc").unwrap();
            for config in configs {
                let opt = profile_unit(&unit, config).unwrap();
                let seed = profile_unit_seed(&unit, config, MachineConfig::default()).unwrap();
                assert!(
                    opt.profile.identical_stats(&seed.profile),
                    "optimized and seed profiles differ (window {}, min_depth {}, break {})",
                    config.window,
                    config.min_depth,
                    config.break_carried_deps
                );
                assert_eq!(opt.run, seed.run);
                assert_eq!(opt.stats.instr_events, seed.stats.instr_events);
                assert_eq!(opt.stats.dynamic_regions, seed.stats.dynamic_regions);
                assert_eq!(opt.stats.max_depth, seed.stats.max_depth);
                assert_eq!(opt.stats.shadow_live_pages, seed.stats.shadow_live_pages);
            }
        }
    }
}
