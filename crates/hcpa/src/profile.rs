//! Per-static-region parallelism profiles.
//!
//! The dictionary summarizes *dynamic* region instances; the planner wants
//! per-*static*-region numbers (the rows of the paper's Figure 3 output:
//! self-parallelism, coverage). This module aggregates the compressed
//! profile — without decompressing — into [`RegionStats`] keyed by
//! [`RegionId`], and derives the dynamic region graph (which static
//! regions appeared as children of which).

use kremlin_compress::{Dictionary, EntryId};
use kremlin_ir::{RegionId, RegionKind, RegionTable};
use std::collections::{BTreeMap, HashSet};

/// Aggregated statistics for one static region.
#[derive(Debug, Clone)]
pub struct RegionStats {
    /// The region.
    pub region: RegionId,
    /// Kind (function / loop / loop body).
    pub kind: RegionKind,
    /// Human-readable label (`main#L0`, `blur`, ...).
    pub label: String,
    /// Source location rendered like the paper's plan column
    /// (`file.kc (49-58)`).
    pub location: String,
    /// Number of dynamic instances observed.
    pub instances: u64,
    /// Total work across all instances (children included).
    pub total_work: u64,
    /// Fraction of whole-program work spent in this region (`[0, 1]`).
    pub coverage: f64,
    /// Work-weighted average self-parallelism.
    pub self_p: f64,
    /// Work-weighted average total parallelism (`work/cp`).
    pub total_p: f64,
    /// Average direct dynamic children per instance (iteration count for
    /// loops).
    pub avg_children: f64,
    /// DOALL classification (paper §5.1: SP ≈ iteration count).
    pub is_doall: bool,
    /// Whether this loop contains a detected reduction accumulator.
    pub is_reduction: bool,
}

/// Integer accumulator for one static region's instances at one nesting
/// depth. Everything is exact integer arithmetic; floats appear only in
/// the final [`RegionStats`] derivation, so accumulators from different
/// runs (or depth-sharded slices) can be recombined without rounding
/// drift.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DepthAcc {
    instances: u64,
    work: u64,
    children_instances: u64,
    /// Integer weight per distinct `(sp, tp)` bit pattern. Grouping by
    /// *value* before the f64 reduction makes the aggregate independent of
    /// how the dictionary partitioned instances into entries: depth-ranged
    /// runs collapse untracked-depth descendants differently, refining or
    /// coarsening the entry partition without changing any instance's
    /// sp/tp — so stitched profiles come out bit-identical to full-window
    /// ones.
    groups: BTreeMap<(u64, u64), u128>,
}

impl DepthAcc {
    fn add(&mut self, other: &DepthAcc) {
        self.instances += other.instances;
        self.work += other.work;
        self.children_instances += other.children_instances;
        for (&k, &w) in &other.groups {
            *self.groups.entry(k).or_insert(0) += w;
        }
    }
}

/// The aggregated profile of one run.
#[derive(Debug, Clone)]
pub struct ParallelismProfile {
    /// Stats per region; `None` for regions never executed.
    stats: Vec<Option<RegionStats>>,
    /// Per region, per nesting depth, the exact integer accumulators the
    /// stats were derived from. A region called from several places
    /// appears at several depths; [`ParallelismProfile::stitch`] uses this
    /// to take each depth's numbers from the depth-range run that tracked
    /// it.
    depth_accs: Vec<BTreeMap<usize, DepthAcc>>,
    /// Whole-program work.
    pub root_work: u64,
    /// The root (main) region.
    pub root: Option<RegionId>,
    /// Dynamic region-graph children: `graph[r]` = static regions observed
    /// as direct children of `r` (includes call edges).
    graph: Vec<HashSet<RegionId>>,
    /// The compressed dictionary the profile was computed from (the
    /// simulator replays plans over it).
    pub dict: Dictionary,
}

/// Depth-resolved outermost-instance counts for entries, masked at static
/// region `mask`: `counts[e][d]` is the number of dynamic instances of
/// entry `e` at nesting depth `d` that are not nested inside another
/// activation of `mask` (the depth-resolved analogue of
/// [`Dictionary::instance_counts_masked`]). Depth is path length from the
/// root, a purely structural property — identical for every depth-range
/// run of the same execution, however differently their dictionaries
/// collapse instances into entries.
fn depth_counts_masked(dict: &Dictionary, mask: u32) -> Vec<BTreeMap<usize, u64>> {
    let n = dict.iter().count();
    let mut counts: Vec<BTreeMap<usize, u64>> = vec![BTreeMap::new(); n];
    let Some(root) = dict.root() else { return counts };
    counts[root.index()].insert(0, 1);
    // Children have smaller indices than parents, so a reverse pass
    // propagates counts in one sweep.
    for i in (0..n).rev() {
        if counts[i].is_empty() {
            continue;
        }
        let e = dict.entry(EntryId(i as u32));
        // Masked entries absorb their count without propagating (the root
        // always propagates, as in `instance_counts_masked`).
        if e.static_id == mask && EntryId(i as u32) != root {
            continue;
        }
        let parent = counts[i].clone();
        for &(child, m) in &e.children {
            for (&d, &c) in &parent {
                *counts[child.index()].entry(d + 1).or_insert(0) += c * m;
            }
        }
    }
    counts
}

/// Derives the numeric [`RegionStats`] fields from an integer accumulator.
/// Every profile — built directly or stitched from depth slices — goes
/// through this one function, so equal accumulators give bit-equal floats.
fn numeric_stats(meta: RegionStats, a: &DepthAcc, root_work: u64) -> RegionStats {
    // Reduce the value groups in sorted order: deterministic and
    // entry-partition independent.
    let mut w_sp = 0.0;
    let mut w_tp = 0.0;
    let mut weight = 0.0;
    for (&(sp_bits, tp_bits), &w) in &a.groups {
        let w = w as f64;
        w_sp += w * f64::from_bits(sp_bits);
        w_tp += w * f64::from_bits(tp_bits);
        weight += w;
    }
    let self_p = if weight > 0.0 { w_sp / weight } else { 1.0 };
    let total_p = if weight > 0.0 { w_tp / weight } else { 1.0 };
    let avg_children = a.children_instances as f64 / a.instances.max(1) as f64;
    // DOALL: a loop whose SP tracks its iteration count (within 20%, at
    // least 2 iterations).
    let is_doall =
        meta.kind == RegionKind::Loop && avg_children >= 2.0 && self_p >= 0.8 * avg_children;
    RegionStats {
        instances: a.instances,
        total_work: a.work,
        coverage: if root_work > 0 { a.work as f64 / root_work as f64 } else { 0.0 },
        self_p,
        total_p,
        avg_children,
        is_doall,
        ..meta
    }
}

impl ParallelismProfile {
    /// Aggregates a dictionary into per-region statistics.
    ///
    /// `reduction_loops` comes from the static induction/reduction
    /// analysis (`CompiledUnit::reduction_loops`).
    pub fn build(
        regions: &RegionTable,
        dict: Dictionary,
        reduction_loops: &HashSet<RegionId>,
    ) -> ParallelismProfile {
        let n = regions.len();
        let counts = dict.instance_counts();
        let sp = dict.self_parallelism();
        let tp = dict.total_parallelism();

        // Per-region totals must not double-count recursive activations:
        // for each static region appearing in the profile, count only the
        // *outermost* instances (propagation masked at that region),
        // resolved by nesting depth so depth-sharded runs can be stitched
        // per depth.
        let mut masked: std::collections::HashMap<u32, Vec<BTreeMap<usize, u64>>> =
            std::collections::HashMap::new();

        let mut depth_accs: Vec<BTreeMap<usize, DepthAcc>> = vec![BTreeMap::new(); n];
        let mut graph: Vec<HashSet<RegionId>> = vec![HashSet::new(); n];

        for (id, e) in dict.iter() {
            if counts[id.index()] == 0 {
                continue;
            }
            let s = e.static_id as usize;
            let by_depth = masked
                .entry(e.static_id)
                .or_insert_with(|| depth_counts_masked(&dict, e.static_id));
            for (&d, &c) in &by_depth[id.index()] {
                if c == 0 {
                    continue;
                }
                let a = depth_accs[s].entry(d).or_default();
                a.instances += c;
                a.work += c * e.work;
                // Weight by work so long-running instances dominate, with
                // +1 to keep zero-work instances from vanishing.
                let w = c as u128 * (e.work as u128 + 1);
                *a.groups
                    .entry((sp[id.index()].to_bits(), tp[id.index()].to_bits()))
                    .or_insert(0) += w;
                a.children_instances += c * e.child_instances();
            }
            for (child, _) in &e.children {
                let child_sid = dict.entry(*child).static_id;
                graph[s].insert(RegionId(child_sid));
            }
        }

        let root = dict.root().map(|r| RegionId(dict.entry(r).static_id));
        let root_work = dict.root().map(|r| dict.entry(r).work).unwrap_or(0);

        let stats = (0..n)
            .map(|s| {
                let mut a = DepthAcc::default();
                for acc in depth_accs[s].values() {
                    a.add(acc);
                }
                if a.instances == 0 {
                    return None;
                }
                let info = regions.info(RegionId(s as u32));
                Some(numeric_stats(
                    RegionStats {
                        region: info.id,
                        kind: info.kind,
                        label: info.label.clone(),
                        location: format!("{} ({})", "", info.span.line_range()),
                        instances: 0,
                        total_work: 0,
                        coverage: 0.0,
                        self_p: 1.0,
                        total_p: 1.0,
                        avg_children: 0.0,
                        is_doall: false,
                        is_reduction: reduction_loops.contains(&info.id),
                    },
                    &a,
                    root_work,
                ))
            })
            .collect();

        ParallelismProfile { stats, depth_accs, root_work, root, graph, dict }
    }

    /// Sets the source file name used in the `location` field.
    pub fn set_source_name(&mut self, name: &str) {
        for s in self.stats.iter_mut().flatten() {
            // location was rendered with an empty name placeholder.
            if s.location.starts_with(" (") {
                s.location = format!("{name}{}", s.location);
            }
        }
    }

    /// Stats for one region (`None` if it never executed).
    pub fn stats(&self, r: RegionId) -> Option<&RegionStats> {
        self.stats.get(r.index()).and_then(|s| s.as_ref())
    }

    /// Iterates stats of all executed regions, in region-ID order.
    pub fn iter(&self) -> impl Iterator<Item = &RegionStats> {
        self.stats.iter().flatten()
    }

    /// Number of executed regions.
    pub fn executed_regions(&self) -> usize {
        self.stats.iter().flatten().count()
    }

    /// Direct children of `r` in the dynamic region graph (call edges
    /// included).
    pub fn children(&self, r: RegionId) -> impl Iterator<Item = RegionId> + '_ {
        self.graph.get(r.index()).into_iter().flatten().copied()
    }

    /// All regions reachable from `r` (excluding `r` itself).
    pub fn descendants(&self, r: RegionId) -> HashSet<RegionId> {
        let mut out = HashSet::new();
        let mut stack: Vec<RegionId> = self.children(r).collect();
        while let Some(c) = stack.pop() {
            if out.insert(c) {
                stack.extend(self.children(c));
            }
        }
        out
    }

    /// Stitches depth-sliced runs into one profile (paper §4.2: the
    /// depth-range flag "facilitat[es] parallel data collection for the
    /// HCPA").
    ///
    /// `slices[k]` must be the profile of a run with
    /// `min_depth = k * (window - 1)` and the given `window` (the last
    /// slice's window may be clipped). Slicing only affects *timing*
    /// state: every slice observes the same region instances at the same
    /// depths, but an instance's cp (and so sp/tp) is only valid in the
    /// slice whose range covers both the instance's depth and its
    /// children's. Stitching therefore recombines the per-`(region,
    /// depth)` accumulators, taking each depth `d` from its owning slice
    /// `d / (window - 1)` — a region called at several depths (say, a
    /// function invoked at top level *and* deep inside a loop nest) gets
    /// each call site's instances from the slice that tracked them. The
    /// result is bit-identical to a full-window run
    /// ([`ParallelismProfile::identical_stats`]).
    ///
    /// Coverage is normalized against slice 0's whole-program work: a
    /// slice whose range excludes depth 0 credits call latencies only
    /// inside its range, so its own root work runs short; slice 0 tracks
    /// depth 0 and matches a full run's.
    ///
    /// The stitched profile supports *planning* (per-region stats and the
    /// region graph are correct); the embedded dictionary is the slice-0
    /// dictionary, whose per-entry cp values are only valid inside slice
    /// 0's range — run an unsliced profile when the simulator is needed.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is empty, `window < 2`, or profiles disagree on
    /// region count.
    #[must_use]
    pub fn stitch(slices: &[ParallelismProfile], window: usize) -> ParallelismProfile {
        assert!(window >= 2, "window must cover a region and its children");
        let stride = window - 1;
        let starts: Vec<usize> = (0..slices.len()).map(|k| k * stride).collect();
        ParallelismProfile::stitch_at(slices, &starts)
    }

    /// [`stitch`](ParallelismProfile::stitch) with explicit, possibly
    /// non-uniform slice boundaries: `starts[k]` is the first depth
    /// *owned* by slice `k` (`starts[0]` must be 0, strictly
    /// increasing), and depth `d` is taken from the last slice whose
    /// start is `<= d`. This is what cost-balanced shard plans
    /// ([`crate::parallel::plan_shards_weighted`]) stitch with, where
    /// every shard owns a different number of depths; the uniform-stride
    /// [`stitch`](ParallelismProfile::stitch) is the special case
    /// `starts[k] = k * (window - 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is empty, `starts` has a different length,
    /// `starts[0] != 0`, starts are not strictly increasing, or the
    /// profiles disagree on region count.
    #[must_use]
    pub fn stitch_at(slices: &[ParallelismProfile], starts: &[usize]) -> ParallelismProfile {
        assert!(!slices.is_empty(), "stitch of zero slices");
        assert_eq!(slices.len(), starts.len(), "one start depth per slice");
        assert_eq!(starts[0], 0, "slice 0 must own depth 0");
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "starts must strictly increase");
        let n = slices[0].stats.len();
        assert!(slices.iter().all(|p| p.stats.len() == n), "mismatched modules");
        let owner = |d: usize| starts.partition_point(|&s| s <= d) - 1;
        let mut merged = slices[0].clone();
        let root_work = merged.root_work;
        for r in 0..n {
            let mut accs: BTreeMap<usize, DepthAcc> = BTreeMap::new();
            for (k, slice) in slices.iter().enumerate() {
                for (&d, a) in &slice.depth_accs[r] {
                    if owner(d) == k {
                        accs.insert(d, a.clone());
                    }
                }
            }
            let mut total = DepthAcc::default();
            for a in accs.values() {
                total.add(a);
            }
            merged.stats[r] = match merged.stats[r].take() {
                Some(meta) if total.instances > 0 => Some(numeric_stats(meta, &total, root_work)),
                other => other,
            };
            merged.depth_accs[r] = accs;
        }
        merged
    }

    /// True when two profiles agree **bit-for-bit** on every per-region
    /// statistic (floating-point fields compared by bit pattern), the
    /// root, total work, and the region graph.
    ///
    /// The embedded dictionaries are *not* compared: a stitched profile
    /// carries its slice-0 dictionary, which legitimately differs from a
    /// full-window run's. This is the equivalence that depth-sharded
    /// collection ([`crate::parallel`]) guarantees against a single
    /// full-window pass.
    #[must_use]
    pub fn identical_stats(&self, other: &ParallelismProfile) -> bool {
        fn feq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        fn seq(a: &RegionStats, b: &RegionStats) -> bool {
            a.region == b.region
                && a.kind == b.kind
                && a.label == b.label
                && a.location == b.location
                && a.instances == b.instances
                && a.total_work == b.total_work
                && feq(a.coverage, b.coverage)
                && feq(a.self_p, b.self_p)
                && feq(a.total_p, b.total_p)
                && feq(a.avg_children, b.avg_children)
                && a.is_doall == b.is_doall
                && a.is_reduction == b.is_reduction
        }
        self.root == other.root
            && self.root_work == other.root_work
            && self.stats.len() == other.stats.len()
            && self.stats.iter().zip(&other.stats).all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => seq(a, b),
                _ => false,
            })
            && self.depth_accs == other.depth_accs
            && self.graph == other.graph
    }

    /// Work-weighted merge of several runs of the *same module* (paper
    /// §2.4: "Kremlin supports aggregation of data from multiple runs").
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the profiles have different region
    /// counts.
    pub fn merge(profiles: &[ParallelismProfile]) -> ParallelismProfile {
        assert!(!profiles.is_empty(), "merge of zero profiles");
        let n = profiles[0].stats.len();
        assert!(
            profiles.iter().all(|p| p.stats.len() == n),
            "profiles come from different modules"
        );
        let mut merged = profiles[0].clone();
        for p in &profiles[1..] {
            merged.root_work += p.root_work;
            for (i, s) in p.stats.iter().enumerate() {
                let Some(s) = s else { continue };
                match &mut merged.stats[i] {
                    slot @ None => *slot = Some(s.clone()),
                    Some(m) => {
                        let w0 = m.total_work as f64;
                        let w1 = s.total_work as f64;
                        let tot = (w0 + w1).max(1.0);
                        m.self_p = (m.self_p * w0 + s.self_p * w1) / tot;
                        m.total_p = (m.total_p * w0 + s.total_p * w1) / tot;
                        m.avg_children = (m.avg_children * m.instances as f64
                            + s.avg_children * s.instances as f64)
                            / (m.instances + s.instances).max(1) as f64;
                        m.instances += s.instances;
                        m.total_work += s.total_work;
                        m.is_doall = m.is_doall && s.is_doall;
                        m.is_reduction |= s.is_reduction;
                    }
                }
                merged.graph[i].extend(p.graph[i].iter().copied());
            }
            for (i, accs) in p.depth_accs.iter().enumerate() {
                for (&d, a) in accs {
                    merged.depth_accs[i].entry(d).or_default().add(a);
                }
            }
        }
        let root_work = merged.root_work;
        for s in merged.stats.iter_mut().flatten() {
            s.coverage = if root_work > 0 { s.total_work as f64 / root_work as f64 } else { 0.0 };
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{HcpaConfig, Profiler};
    use kremlin_interp::{run_with_hook, MachineConfig};
    use kremlin_ir::compile;

    fn profile(src: &str) -> (kremlin_ir::CompiledUnit, ParallelismProfile) {
        let unit = compile(src, "t.kc").expect("compiles");
        let mut p = Profiler::new(&unit.module, HcpaConfig::default());
        run_with_hook(&unit.module, &mut p, MachineConfig::default()).expect("runs");
        let (dict, _) = p.finish();
        let prof = ParallelismProfile::build(&unit.module.regions, dict, &unit.reduction_loops());
        (unit, prof)
    }

    const DOALL_SRC: &str = "float a[64]; float b[64];\n\
        int main() {\n\
          for (int i = 0; i < 64; i++) { a[i] = (float) i; }\n\
          for (int i = 0; i < 64; i++) { b[i] = a[i] * 2.0 + 1.0; }\n\
          return (int) b[63];\n\
        }";

    #[test]
    fn doall_classification() {
        let (unit, prof) = profile(DOALL_SRC);
        let l1 = unit.module.regions.by_label("main#L1").unwrap();
        let s = prof.stats(l1).unwrap();
        assert!(s.is_doall, "SP {} vs iters {}", s.self_p, s.avg_children);
        assert!((s.avg_children - 64.0).abs() < 1e-9);
        assert!(s.coverage > 0.1 && s.coverage < 1.0);
    }

    #[test]
    fn coverage_of_root_is_one() {
        let (unit, prof) = profile(DOALL_SRC);
        let main = unit.module.regions.by_label("main").unwrap();
        let s = prof.stats(main).unwrap();
        assert!((s.coverage - 1.0).abs() < 1e-9);
        assert_eq!(s.instances, 1);
        assert_eq!(prof.root, Some(main));
    }

    #[test]
    fn region_graph_follows_call_edges() {
        let (unit, prof) = profile(
            "float sq(float x) { return x * x; }\n\
             int main() { float s = 0.0; for (int i = 0; i < 4; i++) { s += sq((float) i); } return (int) s; }",
        );
        let body = unit.module.regions.by_label("main#L0b").unwrap();
        let sq = unit.module.regions.by_label("sq").unwrap();
        let children: Vec<_> = prof.children(body).collect();
        assert!(children.contains(&sq), "call edge body -> sq missing: {children:?}");
        let main = unit.module.regions.by_label("main").unwrap();
        assert!(prof.descendants(main).contains(&sq));
    }

    #[test]
    fn unexecuted_regions_have_no_stats() {
        let (unit, prof) = profile(
            "void never() { for (int i = 0; i < 5; i++) { } }\n\
             int main() { if (0) { never(); } return 0; }",
        );
        let never = unit.module.regions.by_label("never").unwrap();
        assert!(prof.stats(never).is_none());
        assert!(prof.executed_regions() >= 1);
    }

    #[test]
    fn reduction_flag_propagates() {
        let (unit, prof) = profile(
            "float a[32];\n\
             int main() { float s = 0.0; for (int i = 0; i < 32; i++) { s += a[i]; } return (int) s; }",
        );
        let l0 = unit.module.regions.by_label("main#L0").unwrap();
        assert!(prof.stats(l0).unwrap().is_reduction);
    }

    #[test]
    fn recursion_does_not_inflate_coverage() {
        let (unit, prof) = profile(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(14); }",
        );
        let fib = unit.module.regions.by_label("fib").unwrap();
        let s = prof.stats(fib).unwrap();
        assert!(
            s.coverage <= 1.0 + 1e-9,
            "recursive coverage must stay <= 100%, got {}",
            s.coverage * 100.0
        );
        assert!(s.coverage > 0.9, "fib dominates the program: {}", s.coverage);
        // Only the outermost activation is counted.
        assert_eq!(s.instances, 1);
    }

    #[test]
    fn merge_combines_runs() {
        let (_, p1) = profile(DOALL_SRC);
        let (_, p2) = profile(DOALL_SRC);
        let merged = ParallelismProfile::merge(&[p1.clone(), p2]);
        let r = merged.root.unwrap();
        assert_eq!(merged.stats(r).unwrap().instances, 2);
        assert_eq!(merged.root_work, 2 * p1.root_work);
        // Coverage stays normalized.
        assert!((merged.stats(r).unwrap().coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn set_source_name_rewrites_locations() {
        let (unit, mut prof) = profile(DOALL_SRC);
        prof.set_source_name("demo.kc");
        let main = unit.module.regions.by_label("main").unwrap();
        assert!(prof.stats(main).unwrap().location.starts_with("demo.kc ("));
    }
}
