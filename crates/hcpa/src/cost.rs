//! Instruction cost (latency) model.
//!
//! Critical path analysis needs a latency for every operation: a value's
//! availability time is "the times of all instructions it depends upon
//! [max], then adding the operation's latency" (paper §4.1). Kremlin
//! inherits LLVM-level costs; we use a conventional static latency table.
//! Absolute values only scale the time axis — parallelism numbers are
//! ratios — but relative costs (divides ≫ adds) keep workload balance
//! realistic.

use kremlin_ir::instr::{BinOp, InstrKind, Intrinsic, UnOp};

/// Latency table, in abstract cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple integer ALU op (add/sub/compare/logic).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// Float add/subtract/negate.
    pub float_add: u64,
    /// Float multiply.
    pub float_mul: u64,
    /// Float divide.
    pub float_div: u64,
    /// `sqrt`.
    pub sqrt: u64,
    /// Transcendentals (`exp`, `log`, `sin`, `cos`, `pow`).
    pub transcendental: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Address arithmetic (`gep`).
    pub addr: u64,
    /// Int/float conversions.
    pub convert: u64,
    /// Call/return overhead charged to the call result.
    pub call: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            float_add: 3,
            float_mul: 4,
            float_div: 20,
            sqrt: 20,
            transcendental: 40,
            load: 4,
            store: 2,
            addr: 1,
            convert: 2,
            call: 2,
        }
    }
}

impl CostModel {
    /// Latency of one instruction. Markers, constants, parameters, and
    /// phis are free: they model no datapath work.
    pub fn latency(&self, kind: &InstrKind) -> u64 {
        match kind {
            InstrKind::Param(_)
            | InstrKind::ConstInt(_)
            | InstrKind::ConstFloat(_)
            | InstrKind::Phi { .. }
            | InstrKind::Alloca(_)
            | InstrKind::GlobalAddr(_)
            | InstrKind::RegionEnter(_)
            | InstrKind::RegionExit(_)
            | InstrKind::CdPush(_)
            | InstrKind::CdPop => 0,
            InstrKind::Bin(op, ..) => match op {
                BinOp::IAdd | BinOp::ISub | BinOp::ICmp(_) | BinOp::LAnd | BinOp::LOr => {
                    self.int_alu
                }
                BinOp::IMul => self.int_mul,
                BinOp::IDiv | BinOp::IRem => self.int_div,
                BinOp::FAdd | BinOp::FSub | BinOp::FCmp(_) => self.float_add,
                BinOp::FMul => self.float_mul,
                BinOp::FDiv => self.float_div,
            },
            InstrKind::Un(op, _) => match op {
                UnOp::INeg | UnOp::LNot => self.int_alu,
                UnOp::FNeg => self.float_add,
                UnOp::IntToFloat | UnOp::FloatToInt => self.convert,
            },
            InstrKind::Gep { .. } => self.addr,
            InstrKind::Load(_) => self.load,
            InstrKind::Store { .. } => self.store,
            InstrKind::Call { .. } => self.call,
            InstrKind::IntrinsicCall { op, .. } => match op {
                Intrinsic::Sqrt => self.sqrt,
                Intrinsic::Exp
                | Intrinsic::Log
                | Intrinsic::Sin
                | Intrinsic::Cos
                | Intrinsic::Pow => self.transcendental,
                Intrinsic::Fabs
                | Intrinsic::FMin
                | Intrinsic::FMax
                | Intrinsic::IAbs
                | Intrinsic::IMin
                | Intrinsic::IMax => self.int_alu,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kremlin_ir::ValueId;

    #[test]
    fn markers_are_free() {
        let c = CostModel::default();
        assert_eq!(c.latency(&InstrKind::CdPop), 0);
        assert_eq!(c.latency(&InstrKind::RegionEnter(kremlin_ir::RegionId(0))), 0);
        assert_eq!(c.latency(&InstrKind::ConstInt(5)), 0);
    }

    #[test]
    fn divides_cost_more_than_adds() {
        let c = CostModel::default();
        let add = c.latency(&InstrKind::Bin(BinOp::IAdd, ValueId(0), ValueId(1)));
        let div = c.latency(&InstrKind::Bin(BinOp::IDiv, ValueId(0), ValueId(1)));
        assert!(div > add);
        let fdiv = c.latency(&InstrKind::Bin(BinOp::FDiv, ValueId(0), ValueId(1)));
        let fmul = c.latency(&InstrKind::Bin(BinOp::FMul, ValueId(0), ValueId(1)));
        assert!(fdiv > fmul);
    }

    #[test]
    fn loads_cost_more_than_address_arithmetic() {
        let c = CostModel::default();
        assert!(
            c.latency(&InstrKind::Load(ValueId(0)))
                > c.latency(&InstrKind::Gep { base: ValueId(0), index: ValueId(1), stride: 1 })
        );
    }
}
