//! Multi-level (hierarchical) shadow state.
//!
//! HCPA "must effectively maintain many versions of the shadow memory"
//! (paper §4.2): each location carries a fixed-size array of availability
//! times, one slot per region-nesting depth, and every slot is **tagged**
//! with the region-instance ID of its writer. Two regions at the same
//! depth map to the same slot; a tag mismatch on read means the data
//! belongs to a previous region instance and time 0 is assumed instead —
//! exactly the reuse-avoidance rule of §4.2.
//!
//! Two stores exist, mirroring the paper's split:
//!
//! * [`ShadowMemory`] — a two-level table over the interpreter's slot
//!   address space, pages allocated on demand (§4.1 "dynamic allocation of
//!   shadow memory");
//! * [`ShadowRegs`] — a directly addressed per-frame table for SSA values
//!   (§4.1 "shadow register tables for local variables").
//!
//! # Hot-path layout
//!
//! The profiler touches every tracked depth of a location on every
//! instruction, so the layout is optimized for that access pattern:
//!
//! * `(tag, time)` pairs are interleaved in one [`Slot`] and laid out
//!   **depth-contiguous per location**, so the per-instruction depth loop
//!   is a branch-light scan over one contiguous run instead of two
//!   strided walks over separate tag/time arrays;
//! * [`ShadowMemory`] resolves the page **once per access** via
//!   [`MemShadow::gather_max`] / [`MemShadow::write_run`] and keeps a
//!   one-entry **last-page cache** — loop bodies hit the same page
//!   repeatedly, so most accesses skip the hash lookup entirely.
//!
//! The pre-optimization structures survive as [`BaselineRegs`] /
//! [`BaselineMemory`] (split tag/time arrays, one page lookup *per
//! depth*): they are the reference implementation for differential tests
//! and the baseline that `BENCH_profiler.json` measures speedups against.

use std::cell::Cell;
use std::collections::HashMap;

/// Slots per shadow-memory page (power of two).
const PAGE_SLOTS: u64 = 1024;

/// One shadow cell: the region-instance tag of the writer and the
/// availability time it recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Slot {
    /// Region-instance tag of the writer (0 = never written).
    pub tag: u64,
    /// Availability time recorded by the writer.
    pub time: u64,
}

/// Per-frame shadow register operations, as used by the profiler.
///
/// `depth` arguments are *relative* to the profiler's tracked range
/// (`d - min_depth`); the bulk operations cover relative depths
/// `0..t.len()` in one call.
pub trait RegShadow {
    /// Creates a table for `n_values` SSA values with `window` depth slots.
    fn new(n_values: usize, window: usize) -> Self;

    /// Availability time of `value` at `depth`, or 0 on tag mismatch or
    /// out-of-window depth.
    fn read(&self, value: usize, depth: usize, tag: u64) -> u64;

    /// Records `time` for `value` at `depth` under `tag`.
    fn write(&mut self, value: usize, depth: usize, tag: u64, time: u64);

    /// Folds `value`'s times into `t`: for each relative depth `i`,
    /// `t[i] = max(t[i], time at depth i under tags[i])`.
    ///
    /// `tags` and `t` have equal length, at most `window`.
    fn gather_max(&self, value: usize, tags: &[u64], t: &mut [u64]) {
        for (i, (slot, tag)) in t.iter_mut().zip(tags).enumerate() {
            *slot = (*slot).max(self.read(value, i, *tag));
        }
    }

    /// Writes `t[i]` under `tags[i]` at every relative depth `i`.
    fn write_run(&mut self, value: usize, tags: &[u64], t: &[u64]) {
        for (i, (&time, &tag)) in t.iter().zip(tags).enumerate() {
            self.write(value, i, tag, time);
        }
    }
}

/// Shadow-memory operations, as used by the profiler. Depths are relative,
/// as in [`RegShadow`].
pub trait MemShadow {
    /// Creates an empty shadow memory with `window` depth slots per
    /// location.
    fn new(window: usize) -> Self;

    /// Availability time of the value stored at `addr`, observed at
    /// `depth`, or 0 on tag mismatch, unallocated page, or out-of-window
    /// depth.
    fn read(&self, addr: u64, depth: usize, tag: u64) -> u64;

    /// Records `time` for `addr` at `depth` under `tag`, allocating the
    /// page on first touch.
    fn write(&mut self, addr: u64, depth: usize, tag: u64, time: u64);

    /// Folds `addr`'s times into `t` (see [`RegShadow::gather_max`]).
    fn gather_max(&self, addr: u64, tags: &[u64], t: &mut [u64]) {
        for (i, (slot, tag)) in t.iter_mut().zip(tags).enumerate() {
            *slot = (*slot).max(self.read(addr, i, *tag));
        }
    }

    /// Writes `t[i]` under `tags[i]` at every relative depth `i` of `addr`.
    fn write_run(&mut self, addr: u64, tags: &[u64], t: &[u64]) {
        for (i, (&time, &tag)) in t.iter().zip(tags).enumerate() {
            self.write(addr, i, tag, time);
        }
    }

    /// Number of distinct pages ever allocated (historical; never
    /// decreases).
    fn pages_allocated(&self) -> u64;

    /// Number of pages currently resident.
    fn live_pages(&self) -> u64;

    /// Current shadow-memory footprint in bytes, derived from the actual
    /// slot layout of live pages.
    fn footprint_bytes(&self) -> u64;

    /// `(hits, misses)` of the store's page-cache, if it keeps one.
    /// Counts are collected only while `kremlin_obs` metrics are enabled
    /// at construction time; stores without a cache report `(0, 0)`.
    fn cache_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

// ---------------------------------------------------------------------------
// Optimized (packed) stores
// ---------------------------------------------------------------------------

/// A per-frame shadow register table: one depth-contiguous [`Slot`] run
/// per SSA value.
#[derive(Debug)]
pub struct ShadowRegs {
    window: usize,
    slots: Vec<Slot>,
}

impl ShadowRegs {
    /// The depth run of `value`: `window` consecutive slots.
    #[inline]
    pub fn run(&self, value: usize) -> &[Slot] {
        &self.slots[value * self.window..(value + 1) * self.window]
    }

    /// Mutable depth run of `value`.
    #[inline]
    pub fn run_mut(&mut self, value: usize) -> &mut [Slot] {
        &mut self.slots[value * self.window..(value + 1) * self.window]
    }
}

impl RegShadow for ShadowRegs {
    fn new(n_values: usize, window: usize) -> Self {
        ShadowRegs { window, slots: vec![Slot::default(); n_values * window] }
    }

    #[inline]
    fn read(&self, value: usize, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let s = self.slots[value * self.window + depth];
        if s.tag == tag {
            s.time
        } else {
            0
        }
    }

    #[inline]
    fn write(&mut self, value: usize, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        self.slots[value * self.window + depth] = Slot { tag, time };
    }

    #[inline]
    fn gather_max(&self, value: usize, tags: &[u64], t: &mut [u64]) {
        let run = &self.slots[value * self.window..];
        for ((slot, &tag), s) in t.iter_mut().zip(tags).zip(run) {
            // Branch-light select: tag mismatch contributes 0.
            let time = if s.tag == tag { s.time } else { 0 };
            *slot = (*slot).max(time);
        }
    }

    #[inline]
    fn write_run(&mut self, value: usize, tags: &[u64], t: &[u64]) {
        let run = &mut self.slots[value * self.window..];
        for ((&time, &tag), s) in t.iter().zip(tags).zip(run) {
            *s = Slot { tag, time };
        }
    }
}

/// Two-level shadow memory over slot addresses: a hash index from page
/// key to a densely stored page of depth-contiguous [`Slot`] runs, with a
/// one-entry last-page cache in front of the index.
#[derive(Debug, Default)]
pub struct ShadowMemory {
    window: usize,
    index: HashMap<u64, u32>,
    pages: Vec<Box<[Slot]>>,
    /// `(page key, index into pages)` of the most recently touched page.
    /// `u64::MAX` is an impossible key (addresses are `< u64::MAX`), so
    /// the initial value never falsely hits.
    last: Cell<(u64, u32)>,
    /// Pages ever allocated (for reporting historical shadow footprint).
    pages_allocated: u64,
    /// Last-page-cache hit/miss tally, recorded only when `collect` is
    /// set (captured from the `kremlin_obs` metrics switch at
    /// construction) so the disabled hot path pays one predictable
    /// branch.
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    collect: bool,
}

impl ShadowMemory {
    #[inline]
    fn page_of(&self, addr: u64) -> Option<u32> {
        let key = addr / PAGE_SLOTS;
        let (ck, ci) = self.last.get();
        if ck == key {
            if self.collect {
                self.cache_hits.set(self.cache_hits.get() + 1);
            }
            return Some(ci);
        }
        if self.collect {
            self.cache_misses.set(self.cache_misses.get() + 1);
        }
        let i = *self.index.get(&key)?;
        self.last.set((key, i));
        Some(i)
    }

    #[inline]
    fn page_of_mut(&mut self, addr: u64) -> u32 {
        let key = addr / PAGE_SLOTS;
        let (ck, ci) = self.last.get();
        if ck == key {
            if self.collect {
                self.cache_hits.set(self.cache_hits.get() + 1);
            }
            return ci;
        }
        if self.collect {
            self.cache_misses.set(self.cache_misses.get() + 1);
        }
        let i = match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let i = self.pages.len() as u32;
                self.pages.push(
                    vec![Slot::default(); PAGE_SLOTS as usize * self.window].into_boxed_slice(),
                );
                self.pages_allocated += 1;
                *e.insert(i)
            }
        };
        self.last.set((key, i));
        i
    }

    /// The depth run of `addr`, if its page is allocated.
    #[inline]
    pub fn run(&self, addr: u64) -> Option<&[Slot]> {
        let page = &self.pages[self.page_of(addr)? as usize];
        let base = (addr % PAGE_SLOTS) as usize * self.window;
        Some(&page[base..base + self.window])
    }

    /// Mutable depth run of `addr`, allocating its page on first touch.
    #[inline]
    pub fn run_mut(&mut self, addr: u64) -> &mut [Slot] {
        let i = self.page_of_mut(addr) as usize;
        let window = self.window;
        let page = &mut self.pages[i];
        let base = (addr % PAGE_SLOTS) as usize * window;
        &mut page[base..base + window]
    }
}

impl MemShadow for ShadowMemory {
    fn new(window: usize) -> Self {
        ShadowMemory {
            window,
            index: HashMap::new(),
            pages: Vec::new(),
            last: Cell::new((u64::MAX, 0)),
            pages_allocated: 0,
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            collect: kremlin_obs::metrics_enabled(),
        }
    }

    #[inline]
    fn read(&self, addr: u64, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let Some(run) = self.run(addr) else { return 0 };
        let s = run[depth];
        if s.tag == tag {
            s.time
        } else {
            0
        }
    }

    #[inline]
    fn write(&mut self, addr: u64, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        self.run_mut(addr)[depth] = Slot { tag, time };
    }

    #[inline]
    fn gather_max(&self, addr: u64, tags: &[u64], t: &mut [u64]) {
        let Some(run) = self.run(addr) else { return };
        for ((slot, &tag), s) in t.iter_mut().zip(tags).zip(run) {
            let time = if s.tag == tag { s.time } else { 0 };
            *slot = (*slot).max(time);
        }
    }

    #[inline]
    fn write_run(&mut self, addr: u64, tags: &[u64], t: &[u64]) {
        let run = self.run_mut(addr);
        for ((&time, &tag), s) in t.iter().zip(tags).zip(run) {
            *s = Slot { tag, time };
        }
    }

    fn pages_allocated(&self) -> u64 {
        self.pages_allocated
    }

    fn live_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn footprint_bytes(&self) -> u64 {
        // Derived from the actual slot layout rather than a hard-coded
        // per-slot constant.
        self.live_pages() * PAGE_SLOTS * self.window as u64 * std::mem::size_of::<Slot>() as u64
    }

    fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }
}

// ---------------------------------------------------------------------------
// Baseline (pre-optimization) stores
// ---------------------------------------------------------------------------

/// The pre-optimization shadow register table: split tag/time arrays,
/// scalar per-depth access. Reference implementation for differential
/// tests and the benchmark baseline.
#[derive(Debug)]
pub struct BaselineRegs {
    window: usize,
    tags: Vec<u64>,
    times: Vec<u64>,
}

impl RegShadow for BaselineRegs {
    fn new(n_values: usize, window: usize) -> Self {
        BaselineRegs { window, tags: vec![0; n_values * window], times: vec![0; n_values * window] }
    }

    #[inline]
    fn read(&self, value: usize, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let i = value * self.window + depth;
        if self.tags[i] == tag {
            self.times[i]
        } else {
            0
        }
    }

    #[inline]
    fn write(&mut self, value: usize, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        let i = value * self.window + depth;
        self.tags[i] = tag;
        self.times[i] = time;
    }
}

/// The pre-optimization shadow memory: a page hash resolved once *per
/// depth* per access, split tag/time arrays. Reference implementation for
/// differential tests and the benchmark baseline.
#[derive(Debug, Default)]
pub struct BaselineMemory {
    window: usize,
    pages: HashMap<u64, BaselinePage>,
    pages_allocated: u64,
}

#[derive(Debug)]
struct BaselinePage {
    tags: Vec<u64>,
    times: Vec<u64>,
}

impl MemShadow for BaselineMemory {
    fn new(window: usize) -> Self {
        BaselineMemory { window, pages: HashMap::new(), pages_allocated: 0 }
    }

    fn read(&self, addr: u64, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let Some(page) = self.pages.get(&(addr / PAGE_SLOTS)) else { return 0 };
        let i = (addr % PAGE_SLOTS) as usize * self.window + depth;
        if page.tags[i] == tag {
            page.times[i]
        } else {
            0
        }
    }

    fn write(&mut self, addr: u64, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        let window = self.window;
        let pages_allocated = &mut self.pages_allocated;
        let page = self.pages.entry(addr / PAGE_SLOTS).or_insert_with(|| {
            *pages_allocated += 1;
            BaselinePage {
                tags: vec![0; PAGE_SLOTS as usize * window],
                times: vec![0; PAGE_SLOTS as usize * window],
            }
        });
        let i = (addr % PAGE_SLOTS) as usize * self.window + depth;
        page.tags[i] = tag;
        page.times[i] = time;
    }

    fn pages_allocated(&self) -> u64 {
        self.pages_allocated
    }

    fn live_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn footprint_bytes(&self) -> u64 {
        // One u64 tag + one u64 time per slot.
        self.live_pages() * PAGE_SLOTS * self.window as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_regs<R: RegShadow>() {
        let mut r = R::new(4, 8);
        r.write(2, 3, 7, 100);
        assert_eq!(r.read(2, 3, 7), 100);
        assert_eq!(r.read(2, 3, 8), 0, "stale tag must read as 0");
        assert_eq!(r.read(2, 4, 7), 0, "other depth untouched");
        // Out-of-window writes are silent.
        let mut r = R::new(2, 4);
        r.write(1, 9, 1, 50);
        assert_eq!(r.read(1, 9, 1), 0);
    }

    #[test]
    fn regs_tag_mismatch_reads_zero() {
        check_regs::<ShadowRegs>();
        check_regs::<BaselineRegs>();
    }

    fn check_memory<M: MemShadow>() {
        let mut m = M::new(4);
        assert_eq!(m.read(12345, 0, 1), 0);
        assert_eq!(m.pages_allocated(), 0);
        m.write(12345, 0, 1, 42);
        assert_eq!(m.pages_allocated(), 1);
        assert_eq!(m.read(12345, 0, 1), 42);
        // Same page, different slot.
        m.write(12346, 0, 1, 43);
        assert_eq!(m.pages_allocated(), 1);
        // Far address: new page.
        m.write(9_999_999, 2, 5, 44);
        assert_eq!(m.pages_allocated(), 2);
        assert_eq!(m.read(9_999_999, 2, 5), 44);
        assert_eq!(m.live_pages(), 2);
        assert!(m.footprint_bytes() > 0);

        // Depths are independent.
        m.write(100, 0, 1, 10);
        m.write(100, 1, 2, 20);
        assert_eq!(m.read(100, 0, 1), 10);
        assert_eq!(m.read(100, 1, 2), 20);
        assert_eq!(m.read(100, 1, 1), 0, "wrong tag at depth 1");

        // Two loop iterations at the same depth: iteration 2 must not see
        // iteration 1's time (paper §4.2 tag rule).
        m.write(64, 2, 1001, 55); // iteration 1 (instance 1001)
        assert_eq!(m.read(64, 2, 1002), 0); // iteration 2 (instance 1002)
        m.write(64, 2, 1002, 5);
        assert_eq!(m.read(64, 2, 1002), 5);

        // Out-of-window access is silent.
        m.write(64, 9, 1, 1);
        assert_eq!(m.read(64, 9, 1), 0);
    }

    #[test]
    fn memory_semantics_hold_for_both_stores() {
        check_memory::<ShadowMemory>();
        check_memory::<BaselineMemory>();
    }

    #[test]
    fn footprint_derives_from_slot_layout() {
        let mut m = ShadowMemory::new(4);
        m.write(0, 0, 1, 1);
        assert_eq!(m.live_pages(), 1);
        assert_eq!(m.footprint_bytes(), PAGE_SLOTS * 4 * std::mem::size_of::<Slot>() as u64);
        assert_eq!(m.footprint_bytes(), m.live_pages() * PAGE_SLOTS * 4 * 16);
    }

    #[test]
    fn bulk_ops_match_scalar_ops() {
        let mut packed = ShadowMemory::new(6);
        let tags = [3u64, 4, 5, 6];
        let times = [10u64, 0, 30, 40];
        packed.write_run(777, &tags, &times);
        for (i, (&tag, &time)) in tags.iter().zip(&times).enumerate() {
            assert_eq!(packed.read(777, i, tag), time);
        }
        let mut t = [5u64, 5, 5, 5];
        // Query with one mismatching tag: that depth contributes 0.
        packed.gather_max(777, &[3, 9, 5, 6], &mut t);
        assert_eq!(t, [10, 5, 30, 40]);
        // Unallocated page: gather leaves t untouched.
        let mut t2 = [1u64, 2, 3, 4];
        packed.gather_max(999_999, &[1, 1, 1, 1], &mut t2);
        assert_eq!(t2, [1, 2, 3, 4]);
    }

    /// Differential check against the simplest possible model: a
    /// `HashMap<(addr, depth), (tag, time)>`. Randomized accesses are
    /// clustered so runs repeatedly revisit pages (exercising the
    /// last-page cache) while still spraying across many pages and the
    /// full 64-bit address range.
    fn check_memory_against_naive_model<M: MemShadow>(seed: u64) {
        const WINDOW: usize = 6;
        // xorshift64*: deterministic, no external crates.
        let mut state = seed;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        // Page-crossing cluster bases plus one far-away page.
        let bases: [u64; 5] = [0, 1000, 1040, 1 << 30, u64::MAX - PAGE_SLOTS];
        let addr = move |r: u64| {
            let base = bases[(r >> 8) as usize % bases.len()];
            base + r % 64
        };

        let mut model: HashMap<(u64, usize), (u64, u64)> = HashMap::new();
        let mut mem = M::new(WINDOW);
        let model_read =
            |model: &HashMap<(u64, usize), (u64, u64)>, a: u64, d: usize, tag: u64| match model
                .get(&(a, d))
            {
                Some(&(t, time)) if t == tag => time,
                _ => 0,
            };

        for step in 0..20_000u64 {
            let r = rng();
            let a = addr(rng());
            let d = (r >> 16) as usize % (WINDOW + 2); // sometimes out of window
            let tag = 1 + (r >> 24) % 5; // small tag set => frequent collisions
            let time = r >> 40;
            match r % 4 {
                0 => {
                    mem.write(a, d, tag, time);
                    if d < WINDOW {
                        model.insert((a, d), (tag, time));
                    }
                }
                1 => {
                    assert_eq!(
                        mem.read(a, d, tag),
                        if d < WINDOW { model_read(&model, a, d, tag) } else { 0 },
                        "step {step}: read(addr={a}, depth={d}, tag={tag})"
                    );
                }
                2 => {
                    let n = 1 + (r >> 32) as usize % WINDOW;
                    let tags: Vec<u64> = (0..n).map(|i| 1 + (tag + i as u64) % 5).collect();
                    let times: Vec<u64> = (0..n).map(|i| time + i as u64).collect();
                    mem.write_run(a, &tags, &times);
                    for (i, (&t, &tm)) in tags.iter().zip(&times).enumerate() {
                        model.insert((a, i), (t, tm));
                    }
                }
                _ => {
                    let n = 1 + (r >> 32) as usize % WINDOW;
                    let tags: Vec<u64> = (0..n).map(|i| 1 + (tag + i as u64) % 5).collect();
                    let mut got: Vec<u64> = (0..n as u64).map(|i| time / 2 + i).collect();
                    let want: Vec<u64> = got
                        .iter()
                        .enumerate()
                        .map(|(i, &acc)| acc.max(model_read(&model, a, i, tags[i])))
                        .collect();
                    mem.gather_max(a, &tags, &mut got);
                    assert_eq!(got, want, "step {step}: gather_max(addr={a})");
                }
            }
        }

        // Final sweep: every cell the model knows about reads back equal.
        for (&(a, d), &(tag, time)) in &model {
            assert_eq!(mem.read(a, d, tag), time, "final read(addr={a}, depth={d})");
            assert_eq!(mem.read(a, d, tag + 100), 0, "final stale-tag read(addr={a})");
        }
        assert!(mem.live_pages() >= bases.len() as u64 - 1);
    }

    #[test]
    fn packed_memory_matches_naive_model_on_random_trace() {
        for seed in [0x9E37_79B9_7F4A_7C15u64, 42, 0xDEAD_BEEF] {
            check_memory_against_naive_model::<ShadowMemory>(seed);
        }
    }

    #[test]
    fn baseline_memory_matches_naive_model_on_random_trace() {
        check_memory_against_naive_model::<BaselineMemory>(0x9E37_79B9_7F4A_7C15);
    }

    #[test]
    fn last_page_cache_stays_coherent() {
        let mut m = ShadowMemory::new(2);
        // Touch page A, then page B, then read back from A through the
        // cold path and the cached path.
        m.write(10, 0, 1, 11);
        m.write(5000, 0, 1, 22);
        assert_eq!(m.read(10, 0, 1), 11);
        assert_eq!(m.read(10, 1, 1), 0);
        assert_eq!(m.read(5000, 0, 1), 22);
        m.write(10, 1, 2, 33);
        assert_eq!(m.read(10, 1, 2), 33);
        assert_eq!(m.live_pages(), 2);
    }
}
