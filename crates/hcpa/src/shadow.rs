//! Multi-level (hierarchical) shadow state.
//!
//! HCPA "must effectively maintain many versions of the shadow memory"
//! (paper §4.2): each location carries a fixed-size array of availability
//! times, one slot per region-nesting depth, and every slot is **tagged**
//! with the region-instance ID of its writer. Two regions at the same
//! depth map to the same slot; a tag mismatch on read means the data
//! belongs to a previous region instance and time 0 is assumed instead —
//! exactly the reuse-avoidance rule of §4.2.
//!
//! Two stores exist, mirroring the paper's split:
//!
//! * [`ShadowMemory`] — a two-level table over the interpreter's slot
//!   address space, pages allocated on demand (§4.1 "dynamic allocation of
//!   shadow memory");
//! * [`ShadowRegs`] — a directly addressed per-frame table for SSA values
//!   (§4.1 "shadow register tables for local variables").

/// Slots per shadow-memory page (power of two).
const PAGE_SLOTS: u64 = 1024;

/// A per-frame shadow register table: `(tag, time)` per (value, depth).
#[derive(Debug)]
pub struct ShadowRegs {
    window: usize,
    tags: Vec<u64>,
    times: Vec<u64>,
}

impl ShadowRegs {
    /// Creates a table for `n_values` SSA values with `window` depth slots.
    pub fn new(n_values: usize, window: usize) -> Self {
        ShadowRegs {
            window,
            tags: vec![0; n_values * window],
            times: vec![0; n_values * window],
        }
    }

    /// Availability time of `value` at `depth`, or 0 on tag mismatch or
    /// out-of-window depth.
    #[inline]
    pub fn read(&self, value: usize, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let i = value * self.window + depth;
        if self.tags[i] == tag {
            self.times[i]
        } else {
            0
        }
    }

    /// Records `time` for `value` at `depth` under `tag`.
    #[inline]
    pub fn write(&mut self, value: usize, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        let i = value * self.window + depth;
        self.tags[i] = tag;
        self.times[i] = time;
    }
}

/// Two-level shadow memory over slot addresses.
#[derive(Debug, Default)]
pub struct ShadowMemory {
    window: usize,
    pages: std::collections::HashMap<u64, Page>,
    /// Pages ever allocated (for reporting shadow footprint).
    pages_allocated: u64,
}

#[derive(Debug)]
struct Page {
    tags: Vec<u64>,
    times: Vec<u64>,
}

impl ShadowMemory {
    /// Creates an empty shadow memory with `window` depth slots per
    /// location.
    pub fn new(window: usize) -> Self {
        ShadowMemory { window, pages: std::collections::HashMap::new(), pages_allocated: 0 }
    }

    /// Availability time of the value stored at `addr`, observed at
    /// `depth`, or 0 on tag mismatch, unallocated page, or out-of-window
    /// depth.
    pub fn read(&self, addr: u64, depth: usize, tag: u64) -> u64 {
        if depth >= self.window {
            return 0;
        }
        let Some(page) = self.pages.get(&(addr / PAGE_SLOTS)) else { return 0 };
        let i = (addr % PAGE_SLOTS) as usize * self.window + depth;
        if page.tags[i] == tag {
            page.times[i]
        } else {
            0
        }
    }

    /// Records `time` for `addr` at `depth` under `tag`, allocating the
    /// page on first touch.
    pub fn write(&mut self, addr: u64, depth: usize, tag: u64, time: u64) {
        if depth >= self.window {
            return;
        }
        let window = self.window;
        let pages_allocated = &mut self.pages_allocated;
        let page = self.pages.entry(addr / PAGE_SLOTS).or_insert_with(|| {
            *pages_allocated += 1;
            Page {
                tags: vec![0; PAGE_SLOTS as usize * window],
                times: vec![0; PAGE_SLOTS as usize * window],
            }
        });
        let i = (addr % PAGE_SLOTS) as usize * self.window + depth;
        page.tags[i] = tag;
        page.times[i] = time;
    }

    /// Number of distinct pages ever allocated.
    pub fn pages_allocated(&self) -> u64 {
        self.pages_allocated
    }

    /// Approximate shadow-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.pages_allocated * PAGE_SLOTS * self.window as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regs_tag_mismatch_reads_zero() {
        let mut r = ShadowRegs::new(4, 8);
        r.write(2, 3, 7, 100);
        assert_eq!(r.read(2, 3, 7), 100);
        assert_eq!(r.read(2, 3, 8), 0, "stale tag must read as 0");
        assert_eq!(r.read(2, 4, 7), 0, "other depth untouched");
    }

    #[test]
    fn regs_out_of_window_is_silent() {
        let mut r = ShadowRegs::new(2, 4);
        r.write(1, 9, 1, 50);
        assert_eq!(r.read(1, 9, 1), 0);
    }

    #[test]
    fn memory_pages_allocate_on_demand() {
        let mut m = ShadowMemory::new(4);
        assert_eq!(m.read(12345, 0, 1), 0);
        assert_eq!(m.pages_allocated(), 0);
        m.write(12345, 0, 1, 42);
        assert_eq!(m.pages_allocated(), 1);
        assert_eq!(m.read(12345, 0, 1), 42);
        // Same page, different slot.
        m.write(12346, 0, 1, 43);
        assert_eq!(m.pages_allocated(), 1);
        // Far address: new page.
        m.write(9_999_999, 2, 5, 44);
        assert_eq!(m.pages_allocated(), 2);
        assert_eq!(m.read(9_999_999, 2, 5), 44);
        assert!(m.footprint_bytes() > 0);
    }

    #[test]
    fn memory_depths_are_independent() {
        let mut m = ShadowMemory::new(4);
        m.write(100, 0, 1, 10);
        m.write(100, 1, 2, 20);
        assert_eq!(m.read(100, 0, 1), 10);
        assert_eq!(m.read(100, 1, 2), 20);
        assert_eq!(m.read(100, 1, 1), 0, "wrong tag at depth 1");
    }

    #[test]
    fn same_slot_reuse_across_instances() {
        // Two loop iterations at the same depth: iteration 2 must not see
        // iteration 1's time (paper §4.2 tag rule).
        let mut m = ShadowMemory::new(4);
        m.write(64, 2, 1001, 55); // iteration 1 (instance 1001)
        assert_eq!(m.read(64, 2, 1002), 0); // iteration 2 (instance 1002)
        m.write(64, 2, 1002, 5);
        assert_eq!(m.read(64, 2, 1002), 5);
    }
}
