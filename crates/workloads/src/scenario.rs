//! # Declarative parallelism-structure scenarios (`kremlin-corpus`)
//!
//! The twelve hand-written workload analogues cover the paper's benchmark
//! classes; this module scales the corpus the other way: parallelism
//! *structures* are described as data ([`ScenarioSpec`]: loop shape,
//! subscript pattern, dependence distance, trip counts, nesting) and a
//! small generator library lowers each spec to mini-C source. "N
//! hand-written `.kc` files" becomes "N structure classes × parameter
//! grids", and because the spec knows its own structure it can also state
//! what every oracle *should* see:
//!
//! * the static dependence verdict (`kremlin_ir::depend`) for the spec's
//!   designated **hot loop**, plus auxiliary `(label, verdict)` pins;
//! * a **self-parallelism band** `[lo, hi]` the HCPA profile must land in
//!   for that loop (bands are class-derived: a DOACROSS wavefront is
//!   *expected* to overlap rows, so `carried(1)` with SP ≫ 1 is correct
//!   there and a bug elsewhere);
//! * whether the class rules out cross-iteration overlap entirely
//!   ([`ScenarioSpec::serial_by_construction`]), which arms the strict
//!   pairwise static↔dynamic cross-checks in `kremlin::corpus`.
//!
//! [`corpus`] enumerates the fixed parameter grid gated by
//! `CORPUS_verdicts.json` in CI; [`ScenarioSpec::sample`] draws arbitrary
//! specs for the structure fuzzer (including the `linearized` subscript
//! shape knob, so MIV, multi-dimensional, and opposite-stride
//! weak-crossing shapes are all sampled); [`ScenarioSpec::shrink_candidates`]
//! proposes strictly smaller specs for minimizing a failing case.

use crate::rng::XorShift;
use std::fmt;

/// The parallelism-structure classes the generator knows how to lower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioClass {
    /// Perfect DOALL nest with linearized subscripts: every level of the
    /// nest is independent (`a[i*M + j] = f(i, j)`).
    DoallNest,
    /// Distance-1 recurrence (`a[i] = a[i-1] * c + 1`): the serialized
    /// hot loop.
    SerialChain,
    /// Constant-distance carried dependence (`a[i] = a[i-d] + 1`): `d`
    /// independent chains.
    CarriedDist,
    /// Associative reduction (`s += a[i] * c`): DOALL after breaking the
    /// accumulator.
    Reduction,
    /// 2-D wavefront (`w[i][j] = w[i-1][j] + w[i][j-1]`): both loops
    /// carried(1), but rows overlap (DOACROSS), so SP exceeds the
    /// carried distance by design.
    Wavefront,
    /// Elementwise stage pipeline: stage `s` reads stage `s-1`'s array;
    /// each stage loop is itself DOALL.
    Pipeline,
    /// Task DAG: a driver loop invoking task functions that write
    /// disjoint arrays. Interprocedural summaries resolve each task's
    /// sweep, so the driver is statically `carried` (the same address
    /// sets are rewritten every round) while each task's loop is DOALL.
    TaskDag,
    /// Irregular (data-dependent subscript) reduction into a small
    /// histogram: statically `unknown`, dynamically near-serial because
    /// same-bucket updates chain.
    IrregularReduction,
}

/// All classes, in stable order (grid and docs order).
pub const CLASSES: [ScenarioClass; 8] = [
    ScenarioClass::DoallNest,
    ScenarioClass::SerialChain,
    ScenarioClass::CarriedDist,
    ScenarioClass::Reduction,
    ScenarioClass::Wavefront,
    ScenarioClass::Pipeline,
    ScenarioClass::TaskDag,
    ScenarioClass::IrregularReduction,
];

impl ScenarioClass {
    /// Stable machine-readable name (goldens, JSON, CLI filters).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioClass::DoallNest => "doall-nest",
            ScenarioClass::SerialChain => "serial-chain",
            ScenarioClass::CarriedDist => "carried-dist",
            ScenarioClass::Reduction => "reduction",
            ScenarioClass::Wavefront => "wavefront",
            ScenarioClass::Pipeline => "pipeline",
            ScenarioClass::TaskDag => "task-dag",
            ScenarioClass::IrregularReduction => "irregular-reduction",
        }
    }

    /// Parses a [`ScenarioClass::name`] back (CLI `--filter`).
    pub fn from_name(name: &str) -> Option<ScenarioClass> {
        CLASSES.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for ScenarioClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative description of one generated program. Lowering is a
/// pure function of the spec ([`ScenarioSpec::lower`]), so a spec *is* a
/// reproducible test case: the fuzzer reports findings as specs and
/// shrinks them structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The structure class.
    pub class: ScenarioClass,
    /// Hot-loop trip count (outer trip for nests/wavefronts).
    pub trip: u32,
    /// Nesting depth (DOALL nests only; 1–3).
    pub depth: u32,
    /// Carried dependence distance (CarriedDist only; ≥ 2).
    pub distance: u32,
    /// Pipeline stages / DAG tasks / histogram buckets (class-dependent).
    pub stages: u32,
    /// Inner trip count for 2-D shapes (nests, wavefronts) and the
    /// per-element work multiplier elsewhere.
    pub inner: u32,
    /// Subscript-shape knob for the nest classes. `true` is the canonical
    /// flat lowering (`a[i*M + j]`) — the MIV shapes the dependence
    /// ladder's delinearization rung decides. `false` lowers the
    /// alternate shape: true multi-dimensional subscripts (`a[i][j]`)
    /// for depth ≥ 2 nests and wavefronts, and a mirrored opposite-stride
    /// read (`a[i] = a[2(t-1) - i]`, the weak-crossing shape) for depth-1
    /// nests. Other classes ignore the knob (normalized to `true`).
    pub linearized: bool,
}

/// What the oracles should observe for a spec.
#[derive(Debug, Clone)]
pub struct Expectation {
    /// Region label of the designated hot loop (e.g. `main#L1`).
    pub hot: String,
    /// Expected static verdict name for the hot loop
    /// (`kremlin_ir::LoopVerdict::name()` vocabulary).
    pub verdict: &'static str,
    /// The hot loop's trip count (arms the trip-gated pairwise checks).
    pub hot_trip: u32,
    /// Inclusive self-parallelism band `[lo, hi]` for the hot loop.
    pub self_p: (f64, f64),
    /// Additional `(label, verdict)` static pins (e.g. a task function's
    /// inner DOALL next to an `unknown` driver).
    pub also: Vec<(String, &'static str)>,
}

impl ScenarioSpec {
    /// Canonical corpus/repro name, filesystem- and JSON-key-safe.
    pub fn name(&self) -> String {
        let base = self.class.name().replace('-', "_");
        let mut name = match self.class {
            ScenarioClass::DoallNest => {
                format!("{base}_d{}_t{}x{}", self.depth, self.trip, self.inner)
            }
            ScenarioClass::SerialChain => format!("{base}_t{}", self.trip),
            ScenarioClass::CarriedDist => format!("{base}_d{}_t{}", self.distance, self.trip),
            ScenarioClass::Reduction => format!("{base}_t{}", self.trip),
            ScenarioClass::Wavefront => format!("{base}_t{}x{}", self.trip, self.inner),
            ScenarioClass::Pipeline => format!("{base}_s{}_t{}", self.stages, self.trip),
            ScenarioClass::TaskDag => format!("{base}_k{}_t{}", self.stages, self.trip),
            ScenarioClass::IrregularReduction => format!("{base}_b{}_t{}", self.stages, self.trip),
        };
        if !self.linearized {
            name.push_str(if self.class == ScenarioClass::DoallNest && self.depth == 1 {
                "_mirror"
            } else {
                "_md"
            });
        }
        name
    }

    /// Source file name for diagnostics and repro dumps.
    pub fn file_name(&self) -> String {
        format!("{}.kc", self.name())
    }

    /// True when the class forbids cross-iteration overlap in the hot
    /// loop: measured SP materially above the carried distance is then a
    /// reportable static↔dynamic disagreement, not DOACROSS slack.
    pub fn serial_by_construction(&self) -> bool {
        matches!(self.class, ScenarioClass::SerialChain | ScenarioClass::CarriedDist)
    }

    /// Clamps every parameter into its class's valid range. Sampling and
    /// shrinking both funnel through this, so any `ScenarioSpec` built
    /// from raw numbers lowers to a valid program.
    pub fn normalized(mut self) -> ScenarioSpec {
        self.trip = self.trip.clamp(4, 64);
        self.depth =
            if self.class == ScenarioClass::DoallNest { self.depth.clamp(1, 3) } else { 1 };
        self.distance =
            if self.class == ScenarioClass::CarriedDist { self.distance.clamp(2, 8) } else { 1 };
        self.stages = match self.class {
            ScenarioClass::Pipeline => self.stages.clamp(2, 6),
            ScenarioClass::TaskDag => self.stages.clamp(2, 4),
            ScenarioClass::IrregularReduction => self.stages.clamp(2, 8),
            _ => 1,
        };
        self.inner = match self.class {
            ScenarioClass::DoallNest | ScenarioClass::Wavefront => self.inner.clamp(4, 16),
            _ => 1,
        };
        // Keep carried chains meaningful: at least two full chains.
        if self.class == ScenarioClass::CarriedDist {
            self.trip = self.trip.max(self.distance * 4);
        }
        // The subscript-shape knob only exists for the nest classes.
        self.linearized = self.linearized
            || !matches!(self.class, ScenarioClass::DoallNest | ScenarioClass::Wavefront);
        self
    }

    /// Draws a random (normalized) spec — the structure fuzzer's input
    /// distribution. Deterministic in the RNG state.
    pub fn sample(rng: &mut XorShift) -> ScenarioSpec {
        let class = CLASSES[rng.index(CLASSES.len())];
        ScenarioSpec {
            class,
            trip: rng.range(4, 65) as u32,
            depth: rng.range(1, 4) as u32,
            distance: rng.range(2, 9) as u32,
            stages: rng.range(2, 9) as u32,
            inner: rng.range(4, 17) as u32,
            linearized: rng.range(0, 2) == 0,
        }
        .normalized()
    }

    /// Strictly smaller specs to try when minimizing a failing case:
    /// halve or decrement each parameter toward its floor, one axis at a
    /// time (greedy shrinking explores them in order).
    pub fn shrink_candidates(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        let mut push = |cand: ScenarioSpec| {
            let cand = cand.normalized();
            if cand != *self && !out.contains(&cand) {
                out.push(cand);
            }
        };
        for trip in [self.trip / 2, self.trip - 1] {
            push(ScenarioSpec { trip, ..*self });
        }
        if self.depth > 1 {
            push(ScenarioSpec { depth: self.depth - 1, ..*self });
        }
        if self.distance > 2 {
            push(ScenarioSpec { distance: self.distance / 2, ..*self });
            push(ScenarioSpec { distance: self.distance - 1, ..*self });
        }
        if self.stages > 2 {
            push(ScenarioSpec { stages: self.stages / 2, ..*self });
            push(ScenarioSpec { stages: self.stages - 1, ..*self });
        }
        if self.inner > 4 {
            push(ScenarioSpec { inner: self.inner / 2, ..*self });
        }
        if !self.linearized {
            push(ScenarioSpec { linearized: true, ..*self });
        }
        out
    }

    /// A scalar "size" for asserting that shrinking makes progress.
    pub fn weight(&self) -> u64 {
        u64::from(self.trip)
            + u64::from(self.depth)
            + u64::from(self.distance)
            + u64::from(self.stages)
            + u64::from(self.inner)
            + u64::from(!self.linearized)
    }

    /// Lowers the spec to mini-C source. Pure: same spec, same source.
    pub fn lower(&self) -> String {
        let s = self.normalized();
        match s.class {
            ScenarioClass::DoallNest => lower_doall_nest(&s),
            ScenarioClass::SerialChain => lower_serial_chain(&s),
            ScenarioClass::CarriedDist => lower_carried_dist(&s),
            ScenarioClass::Reduction => lower_reduction(&s),
            ScenarioClass::Wavefront => lower_wavefront(&s),
            ScenarioClass::Pipeline => lower_pipeline(&s),
            ScenarioClass::TaskDag => lower_task_dag(&s),
            ScenarioClass::IrregularReduction => lower_irregular(&s),
        }
    }

    /// What the corpus oracles should observe for this spec.
    ///
    /// Self-parallelism bands are deliberately generous (they must hold
    /// across the whole parameter range, under work-weighted averaging
    /// and fork-join edge effects) but still separate the regimes: a
    /// DOALL band never admits SP ≈ 1 once `trip ≥ 8`, and a serialized
    /// band never admits SP ≈ trip.
    pub fn expectation(&self) -> Expectation {
        let s = self.normalized();
        let t = f64::from(s.trip);
        match s.class {
            ScenarioClass::DoallNest => {
                // Every level is independent, and since the MIV rungs
                // landed the analyzer proves it at every level: the inner
                // sweep's interval (e.g. j ∈ [0, M-1] inside `a[i*M + j]`)
                // never folds back across the row stride. The outer-level
                // pins were `unknown` before delinearization.
                let trips = [s.trip, s.inner, 4u32];
                let hot_level = s.depth - 1;
                let ht = trips[hot_level as usize];
                Expectation {
                    hot: format!("main#L{hot_level}"),
                    verdict: "provably-doall",
                    hot_trip: ht,
                    self_p: (0.5 * f64::from(ht), f64::from(ht) + 1.0),
                    also: (0..hot_level)
                        .map(|l| (format!("main#L{l}"), "provably-doall"))
                        .collect(),
                }
            }
            ScenarioClass::SerialChain => Expectation {
                hot: "main#L0".into(),
                verdict: "carried",
                hot_trip: s.trip,
                self_p: (1.0, 2.5),
                also: Vec::new(),
            },
            ScenarioClass::CarriedDist => {
                let d = f64::from(s.distance);
                Expectation {
                    hot: "main#L0".into(),
                    verdict: "carried",
                    hot_trip: s.trip,
                    // d independent chains; the per-iteration index
                    // arithmetic around the chain is itself parallel,
                    // so measured SP runs ~25% above d.
                    self_p: (1.0, 1.5 * d + 1.5),
                    also: Vec::new(),
                }
            }
            ScenarioClass::Reduction => Expectation {
                // L0 initializes the array; L1 is the reduction.
                hot: "main#L1".into(),
                verdict: "doall-after-breaking",
                hot_trip: s.trip,
                self_p: (0.5 * t, t + 1.0),
                also: vec![("main#L0".into(), "provably-doall")],
            },
            ScenarioClass::Wavefront => {
                // The MIV bounds prove the outer loop carried(1): the
                // inner sweep interval of `w[(i-1)*M + j]` sits exactly
                // one row stride behind the store's (this row was pinned
                // `unknown` before the interval tests). The inner loop's
                // `w[.. + j]` vs `w[.. + (j-1)]` pair is strong-SIV
                // carried(1). Rows overlap (DOACROSS), so SP sits
                // strictly between serial and DOALL. The 2-D lowering
                // (`linearized: false`) has no init nest, shifting the
                // loop labels down by one.
                let (hot, aux) = if s.linearized { (1, 2) } else { (0, 1) };
                Expectation {
                    hot: format!("main#L{hot}"),
                    verdict: "carried",
                    hot_trip: s.trip,
                    self_p: (1.0, 0.9 * t.max(f64::from(s.inner))),
                    also: vec![(format!("main#L{aux}"), "carried")],
                }
            }
            ScenarioClass::Pipeline => Expectation {
                // L0 seeds stage 0; L1 is the first consuming stage.
                hot: "main#L1".into(),
                verdict: "provably-doall",
                hot_trip: s.trip,
                self_p: (0.5 * t, t + 1.0),
                also: vec![("main#L0".into(), "provably-doall")],
            },
            ScenarioClass::TaskDag => Expectation {
                // Interprocedural summaries resolve each task's writes to
                // `out{k}[0..t]` — the same address set every round, a
                // definite carried WAW (widened whole-object refs made
                // this `unknown` before). The driver's trip count is the
                // fixed 3 rounds of the lowering.
                hot: "main#L0".into(),
                verdict: "carried",
                hot_trip: 3,
                self_p: (1.0, t + 1.0),
                also: (0..s.stages).map(|k| (format!("task{k}#L0"), "provably-doall")).collect(),
            },
            ScenarioClass::IrregularReduction => {
                let b = f64::from(s.stages);
                Expectation {
                    // L0 = serial key generation, L1 = bucket clear,
                    // L2 = the data-dependent histogram loop.
                    hot: "main#L2".into(),
                    verdict: "unknown",
                    hot_trip: s.trip,
                    // Roughly `buckets` independent update chains.
                    self_p: (1.0, 2.0 * b + 1.0),
                    also: vec![("main#L0".into(), "carried"), ("main#L1".into(), "provably-doall")],
                }
            }
        }
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A spec with every parameter at its class floor (shrinking's fixpoint
/// when the disagreement persists all the way down).
pub fn minimal(class: ScenarioClass) -> ScenarioSpec {
    ScenarioSpec { class, trip: 4, depth: 1, distance: 2, stages: 2, inner: 4, linearized: true }
        .normalized()
}

// ---------------------------------------------------------------------------
// Lowering: spec -> mini-C. All arrays are globals (mini-C has no array
// parameters); subscripts are linearized so the static analyzer sees
// affine accesses exactly where the class intends them.
// ---------------------------------------------------------------------------

fn lower_doall_nest(s: &ScenarioSpec) -> String {
    if !s.linearized {
        return if s.depth == 1 { lower_doall_mirror(s) } else { lower_doall_multidim(s) };
    }
    let (t, m, depth) = (s.trip, s.inner, s.depth);
    let vars = ["i", "j", "k"];
    let trips = [t, m, 4u32];
    let size: u32 = trips[..depth as usize].iter().product();
    // Linearized flat index: i*inner*4 + j*4 + k (truncated to depth).
    let mut index = String::new();
    let mut stride: u32 = 1;
    for lvl in (0..depth as usize).rev() {
        let term =
            if stride == 1 { vars[lvl].to_string() } else { format!("{} * {stride}", vars[lvl]) };
        index = if index.is_empty() { term } else { format!("{term} + {index}") };
        stride *= trips[lvl];
    }
    let body = format!("a[{index}] = (float) ({index}) * 1.5 + 0.5;");
    let mut nest = body;
    for lvl in (0..depth as usize).rev() {
        let v = vars[lvl];
        let bound = trips[lvl];
        nest = format!("for (int {v} = 0; {v} < {bound}; {v}++) {{ {nest} }}");
    }
    format!(
        "// scenario: doall-nest depth={depth} trips={t}x{m}\n\
         float a[{size}];\n\
         int main() {{\n    {nest}\n    return (int) a[{}];\n}}\n",
        size - 1
    )
}

/// Depth-1 alternate shape: a DOALL whose reads run with the opposite
/// stride (`a[i] = a[2(t-1) - i]`). The streams meet only where
/// `k1 + k2 = 2(t-1)`, i.e. both at the last iteration — the weak-crossing
/// SIV test proves there is no *carried* dependence. Globals are
/// zero-initialized, so the untouched upper half reads as 0.0.
fn lower_doall_mirror(s: &ScenarioSpec) -> String {
    let t = s.trip;
    let size = 2 * t - 1;
    format!(
        "// scenario: doall-nest depth=1 mirrored reads (weak-crossing)\n\
         float a[{size}];\n\
         int main() {{\n\
         \x20   for (int i = 0; i < {t}; i++) {{ a[i] = a[{} - i] * 1.5 + 0.5; }}\n\
         \x20   return (int) a[{}];\n}}\n",
        2 * (t - 1),
        t - 1
    )
}

/// Depth ≥ 2 alternate shape: true multi-dimensional subscripts
/// (`a[i][j]`), exercising the per-dimension ladder instead of the
/// linearized MIV path.
fn lower_doall_multidim(s: &ScenarioSpec) -> String {
    let (t, m, depth) = (s.trip, s.inner, s.depth);
    let vars = ["i", "j", "k"];
    let trips = [t, m, 4u32];
    let dims: String = trips[..depth as usize].iter().map(|d| format!("[{d}]")).collect();
    let subs: String = vars[..depth as usize].iter().map(|v| format!("[{v}]")).collect();
    let sum = vars[..depth as usize].join(" + ");
    let last: String = trips[..depth as usize].iter().map(|d| format!("[{}]", d - 1)).collect();
    let mut nest = format!("a{subs} = (float) ({sum}) * 1.5 + 0.5;");
    for lvl in (0..depth as usize).rev() {
        let v = vars[lvl];
        let bound = trips[lvl];
        nest = format!("for (int {v} = 0; {v} < {bound}; {v}++) {{ {nest} }}");
    }
    format!(
        "// scenario: doall-nest depth={depth} trips={t}x{m} multidim\n\
         float a{dims};\n\
         int main() {{\n    {nest}\n    return (int) a{last};\n}}\n"
    )
}

fn lower_serial_chain(s: &ScenarioSpec) -> String {
    let t = s.trip;
    format!(
        "// scenario: serial-chain trip={t}\n\
         float a[{t}];\n\
         int main() {{\n\
         \x20   a[0] = 1.0;\n\
         \x20   for (int i = 1; i < {t}; i++) {{ a[i] = a[i - 1] * 0.9 + 1.0; }}\n\
         \x20   return (int) a[{}];\n}}\n",
        t - 1
    )
}

fn lower_carried_dist(s: &ScenarioSpec) -> String {
    let (t, d) = (s.trip, s.distance);
    let mut init = String::new();
    for i in 0..d {
        init.push_str(&format!("    a[{i}] = {}.0;\n", i + 1));
    }
    format!(
        "// scenario: carried-dist distance={d} trip={t}\n\
         float a[{t}];\n\
         int main() {{\n{init}\
         \x20   for (int i = {d}; i < {t}; i++) {{ a[i] = a[i - {d}] * 0.9 + 1.0; }}\n\
         \x20   return (int) a[{}];\n}}\n",
        t - 1
    )
}

fn lower_reduction(s: &ScenarioSpec) -> String {
    let t = s.trip;
    format!(
        "// scenario: reduction trip={t}\n\
         float a[{t}];\n\
         int main() {{\n\
         \x20   for (int i = 0; i < {t}; i++) {{ a[i] = (float) i * 0.5 + 1.0; }}\n\
         \x20   float s = 0.0;\n\
         \x20   for (int i = 0; i < {t}; i++) {{ s += a[i] * 1.5; }}\n\
         \x20   return (int) s;\n}}\n"
    )
}

fn lower_wavefront(s: &ScenarioSpec) -> String {
    let (n, m) = (s.trip, s.inner);
    if !s.linearized {
        // 2-D subscripts; no init nest (globals zero-initialize), so the
        // wavefront loops are main#L0/main#L1.
        return format!(
            "// scenario: wavefront {n}x{m} multidim\n\
             float w[{n}][{m}];\n\
             int main() {{\n\
             \x20   for (int i = 1; i < {n}; i++) {{\n\
             \x20       for (int j = 1; j < {m}; j++) {{\n\
             \x20           w[i][j] = w[i - 1][j] * 0.5 + w[i][j - 1] * 0.5;\n\
             \x20       }}\n\
             \x20   }}\n\
             \x20   return (int) w[{}][{}];\n}}\n",
            n - 1,
            m - 1
        );
    }
    let size = n * m;
    format!(
        "// scenario: wavefront {n}x{m}\n\
         float w[{size}];\n\
         int main() {{\n\
         \x20   for (int i = 0; i < {size}; i++) {{ w[i] = (float) (i % 7) * 0.25; }}\n\
         \x20   for (int i = 1; i < {n}; i++) {{\n\
         \x20       for (int j = 1; j < {m}; j++) {{\n\
         \x20           w[i * {m} + j] = w[(i - 1) * {m} + j] * 0.5 + w[i * {m} + (j - 1)] * 0.5;\n\
         \x20       }}\n\
         \x20   }}\n\
         \x20   return (int) w[{}];\n}}\n",
        size - 1
    )
}

fn lower_pipeline(s: &ScenarioSpec) -> String {
    let (t, stages) = (s.trip, s.stages);
    let mut decls = String::new();
    for k in 0..stages {
        decls.push_str(&format!("float b{k}[{t}];\n"));
    }
    let mut body =
        format!("    for (int i = 0; i < {t}; i++) {{ b0[i] = (float) i * 0.5 + 1.0; }}\n");
    for k in 1..stages {
        let (dst, src) = (k, k - 1);
        body.push_str(&format!(
            "    for (int i = 0; i < {t}; i++) {{ b{dst}[i] = b{src}[i] * 0.9 + {k}.0; }}\n"
        ));
    }
    format!(
        "// scenario: pipeline stages={stages} trip={t}\n{decls}\
         int main() {{\n{body}\
         \x20   return (int) b{}[{}];\n}}\n",
        stages - 1,
        t - 1
    )
}

fn lower_task_dag(s: &ScenarioSpec) -> String {
    let (t, tasks) = (s.trip, s.stages);
    let mut decls = String::new();
    let mut funcs = String::new();
    for k in 0..tasks {
        decls.push_str(&format!("float out{k}[{t}];\n"));
        funcs.push_str(&format!(
            "void task{k}(int r) {{\n\
             \x20   for (int i = 0; i < {t}; i++) {{ out{k}[i] = (float) (i + r) * 0.5 + {k}.0; }}\n\
             }}\n"
        ));
    }
    let calls: String = (0..tasks).map(|k| format!("        task{k}(r);\n")).collect();
    let sum: String = (0..tasks).map(|k| format!("out{k}[0]")).collect::<Vec<_>>().join(" + ");
    format!(
        "// scenario: task-dag tasks={tasks} trip={t}\n{decls}{funcs}\
         int main() {{\n\
         \x20   for (int r = 0; r < 3; r++) {{\n{calls}\
         \x20   }}\n\
         \x20   return (int) ({sum});\n}}\n"
    )
}

fn lower_irregular(s: &ScenarioSpec) -> String {
    let (t, buckets) = (s.trip, s.stages);
    format!(
        "// scenario: irregular-reduction buckets={buckets} trip={t}\n\
         int key[{t}];\nint hist[{buckets}];\n\
         int main() {{\n\
         \x20   int state = 12345;\n\
         \x20   for (int i = 0; i < {t}; i++) {{\n\
         \x20       state = (state * 1103 + 21401) % 65537;\n\
         \x20       key[i] = state % {buckets};\n\
         \x20   }}\n\
         \x20   for (int i = 0; i < {buckets}; i++) {{ hist[i] = 0; }}\n\
         \x20   for (int i = 0; i < {t}; i++) {{ hist[key[i]] += 1; }}\n\
         \x20   return hist[0];\n}}\n"
    )
}

/// The fixed parameter grid CI gates: every class at several parameter
/// points, in stable order. `CORPUS_verdicts.json` pins one row per
/// entry, exactly like `ANALYZE_verdicts.json` pins the hand-written
/// workloads.
pub fn corpus() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    let base = ScenarioSpec {
        class: ScenarioClass::DoallNest,
        trip: 16,
        depth: 1,
        distance: 2,
        stages: 2,
        inner: 8,
        linearized: true,
    };
    for (trip, depth, inner) in [(16, 1, 8), (8, 2, 8), (8, 3, 4), (48, 1, 8)] {
        specs.push(ScenarioSpec { class: ScenarioClass::DoallNest, trip, depth, inner, ..base });
    }
    // Alternate subscript shapes: mirrored weak-crossing reads and true
    // multi-dimensional subscripts.
    for (trip, depth, inner) in [(16, 1, 8), (8, 2, 8)] {
        specs.push(ScenarioSpec {
            class: ScenarioClass::DoallNest,
            trip,
            depth,
            inner,
            linearized: false,
            ..base
        });
    }
    for trip in [16, 48] {
        specs.push(ScenarioSpec { class: ScenarioClass::SerialChain, trip, ..base });
    }
    for (distance, trip) in [(2, 24), (4, 32), (8, 48)] {
        specs.push(ScenarioSpec { class: ScenarioClass::CarriedDist, distance, trip, ..base });
    }
    for trip in [16, 48] {
        specs.push(ScenarioSpec { class: ScenarioClass::Reduction, trip, ..base });
    }
    for (trip, inner, linearized) in [(8, 8, true), (16, 12, true), (8, 8, false)] {
        specs.push(ScenarioSpec {
            class: ScenarioClass::Wavefront,
            trip,
            inner,
            linearized,
            ..base
        });
    }
    for (stages, trip) in [(2, 16), (4, 24)] {
        specs.push(ScenarioSpec { class: ScenarioClass::Pipeline, stages, trip, ..base });
    }
    for (stages, trip) in [(2, 12), (4, 16)] {
        specs.push(ScenarioSpec { class: ScenarioClass::TaskDag, stages, trip, ..base });
    }
    for (stages, trip) in [(2, 32), (4, 48)] {
        specs.push(ScenarioSpec { class: ScenarioClass::IrregularReduction, stages, trip, ..base });
    }
    // The shared `base` carries fields (distance, stages) that most
    // classes zero out; normalize so grid entries equal their canonical
    // form and `name()` never reflects a dead parameter.
    specs.into_iter().map(ScenarioSpec::normalized).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_class_with_unique_names() {
        let specs = corpus();
        assert!(specs.len() >= 12, "corpus too small: {}", specs.len());
        for class in CLASSES {
            assert!(specs.iter().any(|s| s.class == class), "class {class} missing from corpus");
        }
        let mut names: Vec<String> = specs.iter().map(|s| s.name()).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate corpus entry names");
    }

    #[test]
    fn lowering_is_pure_and_deterministic() {
        for spec in corpus() {
            assert_eq!(spec.lower(), spec.lower(), "{spec}: lowering not deterministic");
            assert_eq!(spec, spec.normalized(), "{spec}: corpus entry not normalized");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_normalized() {
        let mut a = XorShift::new(99);
        let mut b = XorShift::new(99);
        for _ in 0..64 {
            let sa = ScenarioSpec::sample(&mut a);
            let sb = ScenarioSpec::sample(&mut b);
            assert_eq!(sa, sb);
            assert_eq!(sa, sa.normalized());
        }
    }

    #[test]
    fn sampling_reaches_every_class() {
        let mut rng = XorShift::new(7);
        let mut seen = [false; CLASSES.len()];
        for _ in 0..256 {
            let s = ScenarioSpec::sample(&mut rng);
            seen[CLASSES.iter().position(|c| *c == s.class).expect("known class")] = true;
        }
        assert!(seen.iter().all(|s| *s), "sampler misses classes: {seen:?}");
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let mut rng = XorShift::new(3);
        for _ in 0..64 {
            let s = ScenarioSpec::sample(&mut rng);
            for cand in s.shrink_candidates() {
                assert!(cand.weight() < s.weight(), "{s} -> {cand} did not shrink");
                assert_eq!(cand, cand.normalized());
            }
        }
        // Minimal specs cannot shrink further.
        for class in CLASSES {
            assert!(minimal(class).shrink_candidates().is_empty(), "{class} minimal shrinks");
        }
    }

    #[test]
    fn expectations_are_well_formed() {
        let verdicts = ["provably-doall", "doall-after-breaking", "carried", "unknown"];
        for spec in corpus() {
            let e = spec.expectation();
            assert!(e.hot.contains("#L"), "{spec}: hot label `{}`", e.hot);
            assert!(verdicts.contains(&e.verdict), "{spec}: verdict `{}`", e.verdict);
            assert!(e.self_p.0 >= 1.0 - 1e-9, "{spec}: band lo {}", e.self_p.0);
            assert!(e.self_p.0 <= e.self_p.1, "{spec}: empty band");
            for (label, v) in &e.also {
                assert!(label.contains("#L"), "{spec}: also label `{label}`");
                assert!(verdicts.contains(v), "{spec}: also verdict `{v}`");
            }
        }
    }
}
