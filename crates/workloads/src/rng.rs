//! A tiny deterministic PRNG (xorshift64*), replacing the external `rand`
//! crate so the workspace builds with zero external dependencies.
//!
//! Not cryptographic; used for seeded property tests and randomized
//! benchmark inputs where reproducibility matters more than statistical
//! perfection.

/// xorshift64* generator (Vigna, "An experimental exploration of
/// Marsaglia's xorshift generators").
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from `seed` (0 is mapped to a fixed non-zero
    /// constant — the all-zero state is a fixed point of xorshift).
    pub fn new(seed: u64) -> Self {
        XorShift { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift range reduction; bias is negligible for the small
        // bounds used in tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounds_respected() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = XorShift::new(1234);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.index(8)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
