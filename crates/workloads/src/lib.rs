//! # kremlin-workloads — benchmark analogues with MANUAL plans
//!
//! The paper evaluates Kremlin on the eight NAS Parallel Benchmarks and
//! the three C programs of SPEC OMP2001, comparing Kremlin's plans to the
//! regions parallelized in the third-party OpenMP versions ("MANUAL"),
//! plus the SD-VBS `tracking` benchmark as the running example. Those
//! suites cannot be redistributed or compiled here, so this crate carries
//! **mini-C analogues**: for each benchmark, a kernel with the same
//! *parallelism structure class* (DOALL sweeps, reductions with small or
//! ample work, wavefront/DOACROSS solves, coarse loops the third party
//! missed, serial scans), plus the region set a third-party parallelizer
//! annotated (the `MANUAL` plan) and the paper's published numbers for
//! reference. Plan size, overlap, prioritization, and speedup *shape* are
//! functions of this structure, which is what the substitution preserves.
//!
//! Region labels follow the `kremlin-ir` lowering convention:
//! `{function}#L{n}` for the `n`-th loop (lexical order) of `function`.
//!
//! Besides the hand-written analogues, [`scenario`] holds the
//! **kremlin-corpus** layer: declarative [`scenario::ScenarioSpec`]s that
//! lower parallelism-structure classes (DOALL nests, wavefronts,
//! pipelines, task DAGs, reductions, serialized chains) to generated
//! mini-C, with per-spec oracle expectations gated by
//! `CORPUS_verdicts.json` the same way `ANALYZE_verdicts.json` gates the
//! workloads below. [`rng`] is the workspace's zero-dependency seeded
//! generator shared by the corpus sampler and the bench property suites.

pub mod rng;
pub mod scenario;

/// Which suite a workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// NAS Parallel Benchmarks (serial → NPB 2.3 OpenMP-C comparison).
    Npb,
    /// SPEC OMP2001 C benchmarks (serial SPEC 2000 counterparts).
    SpecOmp,
    /// San Diego Vision Benchmark Suite.
    SdVbs,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Npb => "NPB",
            Suite::SpecOmp => "SPEC OMP2001",
            Suite::SdVbs => "SD-VBS",
        }
    }
}

/// Published numbers from the paper's Figure 6 for one benchmark
/// (used by the harness to print paper-vs-measured tables).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// MANUAL plan size (regions parallelized by the third party).
    pub manual_regions: u32,
    /// Kremlin plan size.
    pub kremlin_regions: u32,
    /// Regions common to both.
    pub overlap: u32,
    /// Relative speedup of Kremlin-planned vs MANUAL (Fig. 6b).
    pub rel_speedup: f64,
}

/// One benchmark analogue.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (lowercase, as in the paper).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// mini-C source.
    pub source: &'static str,
    /// Region labels the third-party (MANUAL) version parallelized.
    pub manual_plan: &'static [&'static str],
    /// One-line description of the parallelism structure modeled.
    pub description: &'static str,
    /// The paper's Figure 6 row (`None` for `tracking`, which only
    /// appears in Figure 3).
    pub paper: Option<PaperRow>,
}

impl Workload {
    /// Source file name used in diagnostics and plan locations.
    pub fn file_name(&self) -> String {
        format!("{}.kc", self.name)
    }
}

/// All workloads: the 8 NPB analogues, 3 SPEC OMP analogues, and
/// `tracking`, in the paper's Figure 6 row order plus tracking last.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "ammp",
            suite: Suite::SpecOmp,
            source: include_str!("../kc/ammp.kc"),
            manual_plan: &[
                "zero_forces#L0",
                "compute_forces#L0",
                "update_positions#L0",
                "kinetic_energy#L0",
                "potential_energy#L0",
                "bond_energy#L0",
            ],
            description: "O(n^2) force DOALL + tiny energy reductions (too little work)",
            paper: Some(PaperRow {
                manual_regions: 6,
                kremlin_regions: 3,
                overlap: 2,
                rel_speedup: 0.96,
            }),
        },
        Workload {
            name: "art",
            suite: Suite::SpecOmp,
            source: include_str!("../kc/art.kc"),
            manual_plan: &["init_net#L0", "f1_layer#L0", "train_weights#L0"],
            description: "neural-net layers; Kremlin finds a match loop MANUAL missed",
            paper: Some(PaperRow {
                manual_regions: 3,
                kremlin_regions: 4,
                overlap: 1,
                rel_speedup: 1.0,
            }),
        },
        Workload {
            name: "equake",
            suite: Suite::SpecOmp,
            source: include_str!("../kc/equake.kc"),
            manual_plan: &[
                "init_mesh#L0",
                "smvp#L0",
                "element_forces#L0",
                "integrate_accvel#L0",
                "integrate_disp#L0",
                "seismic_energy#L0",
                "boundary#L0",
                "damp_edges#L0",
                "probe_history#L0",
                "scale_stiffness#L0",
            ],
            description: "banded sparse matvec + integration DOALLs + short setup loops",
            paper: Some(PaperRow {
                manual_regions: 10,
                kremlin_regions: 6,
                overlap: 6,
                rel_speedup: 0.95,
            }),
        },
        Workload {
            name: "bt",
            suite: Suite::Npb,
            source: include_str!("../kc/bt.kc"),
            manual_plan: &[
                "init_bt#L0",
                "compute_speed#L0",
                "scale_speed#L0",
                "zero_edges_x#L0",
                "zero_edges_y#L0",
                "fix_corners#L0",
                "assemble_rhs#L0",
                "x_solve#L0",
                "y_solve#L0",
                "add_update#L0",
                "residual#L0",
            ],
            description: "block-tridiagonal line sweeps: DOALL outer, serial inner solves",
            paper: Some(PaperRow {
                manual_regions: 54,
                kremlin_regions: 27,
                overlap: 27,
                rel_speedup: 0.95,
            }),
        },
        Workload {
            name: "cg",
            suite: Suite::Npb,
            source: include_str!("../kc/cg.kc"),
            manual_plan: &[
                "init_system#L0",
                "matvec#L0",
                "dot_rr#L0",
                "dot_pq#L0",
                "axpy_z#L0",
                "axpy_r#L0",
                "update_p#L0",
                "copy_rp#L0",
                "norm_z#L0",
                "sum_x#L0",
                "trace_a#L0",
            ],
            description: "dominant matvec + a fleet of overhead-bound vector loops",
            paper: Some(PaperRow {
                manual_regions: 22,
                kremlin_regions: 9,
                overlap: 9,
                rel_speedup: 0.96,
            }),
        },
        Workload {
            name: "ep",
            suite: Suite::Npb,
            source: include_str!("../kc/ep.kc"),
            manual_plan: &["main#L0"],
            description: "one embarrassingly parallel reduction loop with ample work",
            paper: Some(PaperRow {
                manual_regions: 1,
                kremlin_regions: 1,
                overlap: 1,
                rel_speedup: 1.0,
            }),
        },
        Workload {
            name: "ft",
            suite: Suite::Npb,
            source: include_str!("../kc/ft.kc"),
            manual_plan: &[
                "init_twiddle#L0",
                "init_grid#L0",
                "pass_rows#L0",
                "pass_cols#L0",
                "evolve#L0",
                "checksum_grid#L0",
            ],
            description: "spectral passes: row/column DOALLs, evolve nest, checksum",
            paper: Some(PaperRow {
                manual_regions: 6,
                kremlin_regions: 6,
                overlap: 5,
                rel_speedup: 0.97,
            }),
        },
        Workload {
            name: "is",
            suite: Suite::Npb,
            source: include_str!("../kc/is.kc"),
            manual_plan: &["global_hist#L1"],
            description:
                "bucket counting: MANUAL hit the shared histogram, Kremlin the blocked phase",
            paper: Some(PaperRow {
                manual_regions: 1,
                kremlin_regions: 1,
                overlap: 0,
                rel_speedup: 1.46,
            }),
        },
        Workload {
            name: "lu",
            suite: Suite::Npb,
            source: include_str!("../kc/lu.kc"),
            manual_plan: &[
                "init_fields#L0",
                "compute_rhs#L0",
                "compute_flux#L0",
                "lower_solve#L1",
                "upper_solve#L1",
                "update_u#L0",
                "scale_tmp#L0",
                "norm_rsd#L0",
                "zero_tmp#L0",
                "boundary_u#L0",
                "max_tmp#L0",
                "copy_edge#L0",
            ],
            description: "SSOR: DOALL sweeps + wavefront DOACROSS solves",
            paper: Some(PaperRow {
                manual_regions: 28,
                kremlin_regions: 11,
                overlap: 11,
                rel_speedup: 0.95,
            }),
        },
        Workload {
            name: "mg",
            suite: Suite::Npb,
            source: include_str!("../kc/mg.kc"),
            manual_plan: &[
                "smooth_fine#L0",
                "smooth_fine#L1",
                "restrict_fine#L0",
                "smooth_mid#L0",
                "coarse_cycle#L0",
                "coarse_cycle#L1",
                "prolong#L0",
                "prolong#L1",
                "fix_boundary#L0",
                "residual_norm#L0",
            ],
            description: "multigrid V-cycle: stencil DOALLs at three levels + tiny fixups",
            paper: Some(PaperRow {
                manual_regions: 10,
                kremlin_regions: 8,
                overlap: 7,
                rel_speedup: 0.95,
            }),
        },
        Workload {
            name: "sp",
            suite: Suite::Npb,
            source: include_str!("../kc/sp.kc"),
            manual_plan: &[
                "init_sp#L1",
                "tx_sweep#L1",
                "ty_sweep#L1",
                "tz_sweep#L1",
                "norm_edges#L0",
                "rms#L1",
            ],
            description: "MANUAL annotated fine inner loops; Kremlin the coarse outer sweeps",
            paper: Some(PaperRow {
                manual_regions: 70,
                kremlin_regions: 58,
                overlap: 47,
                rel_speedup: 1.85,
            }),
        },
        Workload {
            name: "tracking",
            suite: Suite::SdVbs,
            source: include_str!("../kc/tracking.kc"),
            manual_plan: &[
                "blur_h#L0",
                "blur_v#L0",
                "sobel_dx_h#L0",
                "sobel_dx_v#L0",
                "calc_lambda#L0",
                "interp_patch#L0",
            ],
            description:
                "the paper's running example: blur/Sobel DOALLs + Figure 2's fillFeatures nest",
            paper: None,
        },
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Expected static dependence verdicts for every loop of a workload, in
/// region order, as `(region label, verdict name)` pairs. Verdict names
/// match `kremlin_ir::LoopVerdict::name()`: `provably-doall`,
/// `doall-after-breaking`, `carried`, and `unknown`.
///
/// These are the golden tables for `kremlin analyze`: the analyzer's
/// integration tests and the CI `analyze-smoke` gate assert that the
/// static dependence analyzer still produces exactly these verdicts.
pub fn expected_verdicts(name: &str) -> Option<&'static [(&'static str, &'static str)]> {
    let table: &'static [(&'static str, &'static str)] = match name {
        "ammp" => &[
            ("init_atoms#L0", "provably-doall"),
            ("compute_forces#L0", "provably-doall"),
            ("compute_forces#L1", "doall-after-breaking"),
            ("update_positions#L0", "provably-doall"),
            ("zero_forces#L0", "provably-doall"),
            ("kinetic_energy#L0", "doall-after-breaking"),
            ("potential_energy#L0", "doall-after-breaking"),
            ("bond_energy#L0", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "art" => &[
            ("init_net#L0", "provably-doall"),
            ("init_net#L1", "provably-doall"),
            ("f1_layer#L0", "carried"),
            ("train_weights#L0", "carried"),
            ("compute_match#L0", "provably-doall"),
            ("compute_match#L1", "doall-after-breaking"),
            ("normalize_y#L0", "provably-doall"),
            ("find_winner#L0", "unknown"),
            ("resonate#L0", "provably-doall"),
            ("main#L0", "carried"),
        ],
        "equake" => &[
            ("init_mesh#L0", "provably-doall"),
            ("smvp#L0", "provably-doall"),
            ("element_forces#L0", "provably-doall"),
            ("integrate_accvel#L0", "provably-doall"),
            ("integrate_disp#L0", "provably-doall"),
            ("boundary#L0", "provably-doall"),
            ("damp_edges#L0", "provably-doall"),
            ("probe_history#L0", "provably-doall"),
            ("scale_stiffness#L0", "provably-doall"),
            ("seismic_energy#L0", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "bt" => &[
            ("init_bt#L0", "provably-doall"),
            ("init_bt#L1", "provably-doall"),
            ("assemble_rhs#L0", "provably-doall"),
            ("assemble_rhs#L1", "provably-doall"),
            ("x_solve#L0", "provably-doall"),
            ("x_solve#L1", "carried"),
            ("x_solve#L2", "carried"),
            ("y_solve#L0", "provably-doall"),
            ("y_solve#L1", "carried"),
            ("y_solve#L2", "carried"),
            ("compute_speed#L0", "provably-doall"),
            ("zero_edges_x#L0", "provably-doall"),
            ("zero_edges_y#L0", "provably-doall"),
            ("fix_corners#L0", "provably-doall"),
            ("scale_speed#L0", "provably-doall"),
            ("add_update#L0", "provably-doall"),
            ("add_update#L1", "provably-doall"),
            ("residual#L0", "provably-doall"),
            ("residual#L1", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "cg" => &[
            ("init_system#L0", "provably-doall"),
            ("init_system#L1", "provably-doall"),
            ("matvec#L0", "provably-doall"),
            ("matvec#L1", "doall-after-breaking"),
            ("dot_rr#L0", "doall-after-breaking"),
            ("dot_pq#L0", "doall-after-breaking"),
            ("axpy_z#L0", "provably-doall"),
            ("axpy_r#L0", "provably-doall"),
            ("update_p#L0", "provably-doall"),
            ("norm_z#L0", "doall-after-breaking"),
            ("sum_x#L0", "doall-after-breaking"),
            ("trace_a#L0", "doall-after-breaking"),
            ("copy_rp#L0", "provably-doall"),
            ("main#L0", "carried"),
        ],
        "ep" => &[("main#L0", "doall-after-breaking"), ("main#L1", "carried")],
        "ft" => &[
            ("init_twiddle#L0", "carried"),
            ("shuffle_rows#L0", "provably-doall"),
            ("init_grid#L0", "provably-doall"),
            ("init_grid#L1", "provably-doall"),
            ("pass_rows#L0", "provably-doall"),
            ("pass_rows#L1", "carried"),
            ("pass_cols#L0", "provably-doall"),
            ("pass_cols#L1", "carried"),
            ("evolve#L0", "provably-doall"),
            ("evolve#L1", "provably-doall"),
            ("checksum_grid#L0", "provably-doall"),
            ("checksum_grid#L1", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "is" => &[
            ("make_keys#L0", "carried"),
            ("global_hist#L0", "provably-doall"),
            ("global_hist#L1", "unknown"),
            ("blocked_rank#L0", "unknown"),
            ("blocked_rank#L1", "provably-doall"),
            ("blocked_rank#L2", "unknown"),
            ("blocked_rank#L3", "carried"),
            ("blocked_rank#L4", "unknown"),
            ("main#L0", "carried"),
        ],
        "lu" => &[
            ("init_fields#L0", "provably-doall"),
            ("init_fields#L1", "provably-doall"),
            ("compute_rhs#L0", "provably-doall"),
            ("compute_rhs#L1", "provably-doall"),
            ("compute_flux#L0", "provably-doall"),
            ("compute_flux#L1", "provably-doall"),
            ("lower_solve#L0", "carried"),
            ("lower_solve#L1", "provably-doall"),
            ("upper_solve#L0", "carried"),
            ("upper_solve#L1", "provably-doall"),
            ("update_u#L0", "provably-doall"),
            ("update_u#L1", "provably-doall"),
            ("scale_tmp#L0", "provably-doall"),
            ("zero_tmp#L0", "provably-doall"),
            ("boundary_u#L0", "provably-doall"),
            ("max_tmp#L0", "unknown"),
            ("copy_edge#L0", "provably-doall"),
            ("norm_rsd#L0", "provably-doall"),
            ("norm_rsd#L1", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "mg" => &[
            ("init_grid#L0", "provably-doall"),
            ("smooth_fine#L0", "provably-doall"),
            ("smooth_fine#L1", "provably-doall"),
            ("restrict_fine#L0", "provably-doall"),
            ("smooth_mid#L0", "carried"),
            ("smooth_mid#L1", "provably-doall"),
            ("coarse_cycle#L0", "provably-doall"),
            ("coarse_cycle#L1", "carried"),
            ("prolong#L0", "provably-doall"),
            ("prolong#L1", "provably-doall"),
            ("fix_boundary#L0", "provably-doall"),
            ("fix_boundary#L1", "provably-doall"),
            ("residual_norm#L0", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "sp" => &[
            ("init_sp#L0", "provably-doall"),
            ("init_sp#L1", "provably-doall"),
            ("tx_sweep#L0", "provably-doall"),
            ("tx_sweep#L1", "provably-doall"),
            ("ty_sweep#L0", "provably-doall"),
            ("ty_sweep#L1", "provably-doall"),
            ("tz_sweep#L0", "provably-doall"),
            ("tz_sweep#L1", "provably-doall"),
            ("norm_edges#L0", "provably-doall"),
            ("relax_serial#L0", "carried"),
            ("rms#L0", "provably-doall"),
            ("rms#L1", "doall-after-breaking"),
            ("main#L0", "carried"),
        ],
        "tracking" => &[
            ("load_image#L0", "provably-doall"),
            ("load_image#L1", "provably-doall"),
            ("blur_h#L0", "provably-doall"),
            ("blur_h#L1", "provably-doall"),
            ("blur_v#L0", "provably-doall"),
            ("blur_v#L1", "provably-doall"),
            ("sobel_dx_h#L0", "provably-doall"),
            ("sobel_dx_h#L1", "provably-doall"),
            ("sobel_dx_v#L0", "provably-doall"),
            ("sobel_dx_v#L1", "provably-doall"),
            ("interp_patch#L0", "provably-doall"),
            ("interp_patch#L1", "provably-doall"),
            ("calc_lambda#L0", "provably-doall"),
            ("calc_lambda#L1", "provably-doall"),
            ("fill_features#L0", "unknown"),
            ("fill_features#L1", "unknown"),
            ("fill_features#L2", "provably-doall"),
            ("main#L0", "provably-doall"),
            ("main#L1", "carried"),
            ("main#L2", "doall-after-breaking"),
        ],
        _ => return None,
    };
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_twelve() {
        let ws = all();
        assert_eq!(ws.len(), 12);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::Npb).count(), 8);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::SpecOmp).count(), 3);
        assert_eq!(by_name("tracking").unwrap().suite, Suite::SdVbs);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn paper_rows_match_figure6_totals() {
        // Fig. 6a's Overall row: MANUAL 211, Kremlin 134, overlap 116.
        let (m, k, o) = all().iter().filter_map(|w| w.paper).fold((0, 0, 0), |(m, k, o), p| {
            (m + p.manual_regions, k + p.kremlin_regions, o + p.overlap)
        });
        assert_eq!(m, 211);
        assert_eq!(k, 134);
        assert_eq!(o, 116);
        let ratio = m as f64 / k as f64;
        assert!((ratio - 1.57).abs() < 0.02, "plan-size reduction {ratio}");
    }

    #[test]
    fn manual_plans_are_nonempty_and_unique() {
        for w in all() {
            assert!(!w.manual_plan.is_empty(), "{} has an empty MANUAL plan", w.name);
            let mut labels: Vec<_> = w.manual_plan.to_vec();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), w.manual_plan.len(), "{} has duplicate labels", w.name);
        }
    }

    #[test]
    fn expected_verdicts_cover_every_workload() {
        let names = ["provably-doall", "doall-after-breaking", "carried", "unknown"];
        for w in all() {
            let table = expected_verdicts(w.name)
                .unwrap_or_else(|| panic!("{} has no expected-verdict table", w.name));
            assert!(!table.is_empty(), "{} table is empty", w.name);
            for (label, verdict) in table {
                assert!(label.contains("#L"), "{label} is not a loop region label");
                assert!(names.contains(verdict), "{} has unknown verdict `{verdict}`", w.name);
            }
        }
        assert!(expected_verdicts("nope").is_none());
        // Every verdict class is exercised somewhere in the suite.
        for needle in names {
            assert!(
                all().iter().any(|w| {
                    expected_verdicts(w.name).is_some_and(|t| t.iter().any(|(_, v)| *v == needle))
                }),
                "no workload exercises verdict `{needle}`"
            );
        }
    }

    #[test]
    fn checked_in_expectations_file_matches_tables() {
        // `ANALYZE_verdicts.json` is the CI analyze-smoke gate's source of
        // expectations; keep it in lockstep with `expected_verdicts`.
        let file = include_str!("../../../ANALYZE_verdicts.json");
        assert!(file.contains("\"schema\": \"kremlin-analyze-expected-v1\""));
        let mut total = 0;
        for w in all() {
            let start = file
                .find(&format!("\"{}\": {{", w.name))
                .unwrap_or_else(|| panic!("{} missing from ANALYZE_verdicts.json", w.name));
            let section = &file[start..];
            let section = &section[..section.find('}').expect("section is closed")];
            let table = expected_verdicts(w.name).expect("golden table exists");
            for (label, verdict) in table {
                assert!(
                    section.contains(&format!("\"{label}\": \"{verdict}\"")),
                    "{}: `{label}` should be `{verdict}` in ANALYZE_verdicts.json",
                    w.name
                );
            }
            total += table.len();
        }
        let lines = file.lines().filter(|l| l.contains("#L")).count();
        assert_eq!(lines, total, "ANALYZE_verdicts.json has extra or missing verdict lines");
    }

    #[test]
    fn corpus_expectations_file_matches_scenario_grid() {
        // `CORPUS_verdicts.json` is the CI corpus-fuzz gate's source of
        // expectations; keep it in lockstep with `scenario::corpus()`,
        // mirroring the `ANALYZE_verdicts.json` pattern above.
        let file = include_str!("../../../CORPUS_verdicts.json");
        assert!(file.contains("\"schema\": \"kremlin-corpus-expected-v1\""));
        let specs = scenario::corpus();
        for spec in &specs {
            let e = spec.expectation();
            let start = file
                .find(&format!("\"{}\": {{", spec.name()))
                .unwrap_or_else(|| panic!("{spec} missing from CORPUS_verdicts.json"));
            let section = &file[start..];
            let section = &section[..section.find('}').expect("section is closed")];
            for needle in [
                format!("\"class\": \"{}\"", spec.class.name()),
                format!("\"hot\": \"{}\"", e.hot),
                format!("\"verdict\": \"{}\"", e.verdict),
                format!("\"self_p\": [{:.1}, {:.1}]", e.self_p.0, e.self_p.1),
            ] {
                assert!(
                    section.contains(&needle),
                    "{spec}: `{needle}` missing from its CORPUS_verdicts.json row"
                );
            }
        }
        let rows = file.lines().filter(|l| l.contains("\"hot\":")).count();
        assert_eq!(rows, specs.len(), "CORPUS_verdicts.json has extra or missing scenario rows");
    }

    #[test]
    fn suite_names() {
        assert_eq!(Suite::Npb.name(), "NPB");
        assert_eq!(Suite::SpecOmp.name(), "SPEC OMP2001");
        assert_eq!(by_name("ep").unwrap().file_name(), "ep.kc");
    }
}
