/root/repo/target/release/deps/kremlin_interp-a15c798559605ca2.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

/root/repo/target/release/deps/libkremlin_interp-a15c798559605ca2.rlib: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

/root/repo/target/release/deps/libkremlin_interp-a15c798559605ca2.rmeta: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/hooks.rs:
crates/interp/src/machine.rs:
crates/interp/src/memory.rs:
crates/interp/src/value.rs:
