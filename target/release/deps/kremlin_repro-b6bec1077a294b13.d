/root/repo/target/release/deps/kremlin_repro-b6bec1077a294b13.d: src/lib.rs

/root/repo/target/release/deps/libkremlin_repro-b6bec1077a294b13.rlib: src/lib.rs

/root/repo/target/release/deps/libkremlin_repro-b6bec1077a294b13.rmeta: src/lib.rs

src/lib.rs:
