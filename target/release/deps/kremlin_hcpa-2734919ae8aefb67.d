/root/repo/target/release/deps/kremlin_hcpa-2734919ae8aefb67.d: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

/root/repo/target/release/deps/libkremlin_hcpa-2734919ae8aefb67.rlib: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

/root/repo/target/release/deps/libkremlin_hcpa-2734919ae8aefb67.rmeta: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

crates/hcpa/src/lib.rs:
crates/hcpa/src/cost.rs:
crates/hcpa/src/profile.rs:
crates/hcpa/src/profiler.rs:
crates/hcpa/src/shadow.rs:
