/root/repo/target/release/deps/kremlin-fba2d58208852069.d: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

/root/repo/target/release/deps/libkremlin-fba2d58208852069.rlib: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

/root/repo/target/release/deps/libkremlin-fba2d58208852069.rmeta: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/persist.rs:
crates/core/src/report.rs:
