/root/repo/target/release/deps/kremlin_compress-0014e34c2c6bc0ac.d: crates/compress/src/lib.rs

/root/repo/target/release/deps/libkremlin_compress-0014e34c2c6bc0ac.rlib: crates/compress/src/lib.rs

/root/repo/target/release/deps/libkremlin_compress-0014e34c2c6bc0ac.rmeta: crates/compress/src/lib.rs

crates/compress/src/lib.rs:
