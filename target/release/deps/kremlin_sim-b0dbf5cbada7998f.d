/root/repo/target/release/deps/kremlin_sim-b0dbf5cbada7998f.d: crates/simulator/src/lib.rs

/root/repo/target/release/deps/libkremlin_sim-b0dbf5cbada7998f.rlib: crates/simulator/src/lib.rs

/root/repo/target/release/deps/libkremlin_sim-b0dbf5cbada7998f.rmeta: crates/simulator/src/lib.rs

crates/simulator/src/lib.rs:
