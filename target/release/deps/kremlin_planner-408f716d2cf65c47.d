/root/repo/target/release/deps/kremlin_planner-408f716d2cf65c47.d: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

/root/repo/target/release/deps/libkremlin_planner-408f716d2cf65c47.rlib: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

/root/repo/target/release/deps/libkremlin_planner-408f716d2cf65c47.rmeta: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

crates/planner/src/lib.rs:
crates/planner/src/baseline.rs:
crates/planner/src/cilk.rs:
crates/planner/src/estimate.rs:
crates/planner/src/openmp.rs:
crates/planner/src/plan.rs:
