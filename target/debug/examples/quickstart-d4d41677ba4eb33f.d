/root/repo/target/debug/examples/quickstart-d4d41677ba4eb33f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d4d41677ba4eb33f: examples/quickstart.rs

examples/quickstart.rs:
