/root/repo/target/debug/examples/custom_personality-bd9049604a2303f2.d: examples/custom_personality.rs

/root/repo/target/debug/examples/custom_personality-bd9049604a2303f2: examples/custom_personality.rs

examples/custom_personality.rs:
