/root/repo/target/debug/examples/planner_comparison-68154144d2196214.d: examples/planner_comparison.rs

/root/repo/target/debug/examples/planner_comparison-68154144d2196214: examples/planner_comparison.rs

examples/planner_comparison.rs:
