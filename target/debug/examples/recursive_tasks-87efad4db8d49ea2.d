/root/repo/target/debug/examples/recursive_tasks-87efad4db8d49ea2.d: examples/recursive_tasks.rs

/root/repo/target/debug/examples/recursive_tasks-87efad4db8d49ea2: examples/recursive_tasks.rs

examples/recursive_tasks.rs:
