/root/repo/target/debug/examples/feature_tracking-e966387f3715d814.d: examples/feature_tracking.rs

/root/repo/target/debug/examples/feature_tracking-e966387f3715d814: examples/feature_tracking.rs

examples/feature_tracking.rs:
