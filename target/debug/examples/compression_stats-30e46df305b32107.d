/root/repo/target/debug/examples/compression_stats-30e46df305b32107.d: examples/compression_stats.rs

/root/repo/target/debug/examples/compression_stats-30e46df305b32107: examples/compression_stats.rs

examples/compression_stats.rs:
