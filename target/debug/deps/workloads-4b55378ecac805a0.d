/root/repo/target/debug/deps/workloads-4b55378ecac805a0.d: tests/workloads.rs

/root/repo/target/debug/deps/workloads-4b55378ecac805a0: tests/workloads.rs

tests/workloads.rs:
