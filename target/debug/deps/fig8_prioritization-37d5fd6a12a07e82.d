/root/repo/target/debug/deps/fig8_prioritization-37d5fd6a12a07e82.d: crates/bench/src/bin/fig8_prioritization.rs

/root/repo/target/debug/deps/fig8_prioritization-37d5fd6a12a07e82: crates/bench/src/bin/fig8_prioritization.rs

crates/bench/src/bin/fig8_prioritization.rs:
