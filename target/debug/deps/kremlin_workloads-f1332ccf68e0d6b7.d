/root/repo/target/debug/deps/kremlin_workloads-f1332ccf68e0d6b7.d: crates/workloads/src/lib.rs crates/workloads/src/../kc/ammp.kc crates/workloads/src/../kc/art.kc crates/workloads/src/../kc/equake.kc crates/workloads/src/../kc/bt.kc crates/workloads/src/../kc/cg.kc crates/workloads/src/../kc/ep.kc crates/workloads/src/../kc/ft.kc crates/workloads/src/../kc/is.kc crates/workloads/src/../kc/lu.kc crates/workloads/src/../kc/mg.kc crates/workloads/src/../kc/sp.kc crates/workloads/src/../kc/tracking.kc

/root/repo/target/debug/deps/kremlin_workloads-f1332ccf68e0d6b7: crates/workloads/src/lib.rs crates/workloads/src/../kc/ammp.kc crates/workloads/src/../kc/art.kc crates/workloads/src/../kc/equake.kc crates/workloads/src/../kc/bt.kc crates/workloads/src/../kc/cg.kc crates/workloads/src/../kc/ep.kc crates/workloads/src/../kc/ft.kc crates/workloads/src/../kc/is.kc crates/workloads/src/../kc/lu.kc crates/workloads/src/../kc/mg.kc crates/workloads/src/../kc/sp.kc crates/workloads/src/../kc/tracking.kc

crates/workloads/src/lib.rs:
crates/workloads/src/../kc/ammp.kc:
crates/workloads/src/../kc/art.kc:
crates/workloads/src/../kc/equake.kc:
crates/workloads/src/../kc/bt.kc:
crates/workloads/src/../kc/cg.kc:
crates/workloads/src/../kc/ep.kc:
crates/workloads/src/../kc/ft.kc:
crates/workloads/src/../kc/is.kc:
crates/workloads/src/../kc/lu.kc:
crates/workloads/src/../kc/mg.kc:
crates/workloads/src/../kc/sp.kc:
crates/workloads/src/../kc/tracking.kc:
