/root/repo/target/debug/deps/probe_workloads-dd1ba1be9289566d.d: crates/bench/src/bin/probe_workloads.rs

/root/repo/target/debug/deps/probe_workloads-dd1ba1be9289566d: crates/bench/src/bin/probe_workloads.rs

crates/bench/src/bin/probe_workloads.rs:
