/root/repo/target/debug/deps/kremlin_minic-a2a50e6a0c876302.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/span.rs crates/minic/src/token.rs crates/minic/src/typeck.rs crates/minic/src/types.rs

/root/repo/target/debug/deps/kremlin_minic-a2a50e6a0c876302: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/span.rs crates/minic/src/token.rs crates/minic/src/typeck.rs crates/minic/src/types.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/span.rs:
crates/minic/src/token.rs:
crates/minic/src/typeck.rs:
crates/minic/src/types.rs:
