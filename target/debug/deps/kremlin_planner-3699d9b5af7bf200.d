/root/repo/target/debug/deps/kremlin_planner-3699d9b5af7bf200.d: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

/root/repo/target/debug/deps/libkremlin_planner-3699d9b5af7bf200.rlib: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

/root/repo/target/debug/deps/libkremlin_planner-3699d9b5af7bf200.rmeta: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

crates/planner/src/lib.rs:
crates/planner/src/baseline.rs:
crates/planner/src/cilk.rs:
crates/planner/src/estimate.rs:
crates/planner/src/openmp.rs:
crates/planner/src/plan.rs:
