/root/repo/target/debug/deps/paper_claims-385ebe7ce4a6b1d6.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-385ebe7ce4a6b1d6: tests/paper_claims.rs

tests/paper_claims.rs:
