/root/repo/target/debug/deps/props-bc775020a77ddf26.d: tests/props.rs

/root/repo/target/debug/deps/props-bc775020a77ddf26: tests/props.rs

tests/props.rs:
