/root/repo/target/debug/deps/kremlin_repro-3d73820f1bce70b8.d: src/lib.rs

/root/repo/target/debug/deps/libkremlin_repro-3d73820f1bce70b8.rlib: src/lib.rs

/root/repo/target/debug/deps/libkremlin_repro-3d73820f1bce70b8.rmeta: src/lib.rs

src/lib.rs:
