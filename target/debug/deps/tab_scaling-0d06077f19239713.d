/root/repo/target/debug/deps/tab_scaling-0d06077f19239713.d: crates/bench/src/bin/tab_scaling.rs

/root/repo/target/debug/deps/tab_scaling-0d06077f19239713: crates/bench/src/bin/tab_scaling.rs

crates/bench/src/bin/tab_scaling.rs:
