/root/repo/target/debug/deps/kremlin_bench-147d2b8f60c5329f.d: crates/bench/src/lib.rs crates/bench/src/progen.rs crates/bench/src/rng.rs crates/bench/src/timer.rs

/root/repo/target/debug/deps/kremlin_bench-147d2b8f60c5329f: crates/bench/src/lib.rs crates/bench/src/progen.rs crates/bench/src/rng.rs crates/bench/src/timer.rs

crates/bench/src/lib.rs:
crates/bench/src/progen.rs:
crates/bench/src/rng.rs:
crates/bench/src/timer.rs:
