/root/repo/target/debug/deps/kremlin_hcpa-0bf25ce6bc0a5af2.d: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

/root/repo/target/debug/deps/libkremlin_hcpa-0bf25ce6bc0a5af2.rlib: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

/root/repo/target/debug/deps/libkremlin_hcpa-0bf25ce6bc0a5af2.rmeta: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

crates/hcpa/src/lib.rs:
crates/hcpa/src/cost.rs:
crates/hcpa/src/profile.rs:
crates/hcpa/src/profiler.rs:
crates/hcpa/src/shadow.rs:
