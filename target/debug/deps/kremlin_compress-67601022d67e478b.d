/root/repo/target/debug/deps/kremlin_compress-67601022d67e478b.d: crates/compress/src/lib.rs

/root/repo/target/debug/deps/kremlin_compress-67601022d67e478b: crates/compress/src/lib.rs

crates/compress/src/lib.rs:
