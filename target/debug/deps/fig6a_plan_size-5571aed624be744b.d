/root/repo/target/debug/deps/fig6a_plan_size-5571aed624be744b.d: crates/bench/src/bin/fig6a_plan_size.rs

/root/repo/target/debug/deps/fig6a_plan_size-5571aed624be744b: crates/bench/src/bin/fig6a_plan_size.rs

crates/bench/src/bin/fig6a_plan_size.rs:
