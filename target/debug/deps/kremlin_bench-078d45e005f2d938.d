/root/repo/target/debug/deps/kremlin_bench-078d45e005f2d938.d: crates/bench/src/lib.rs crates/bench/src/progen.rs crates/bench/src/rng.rs crates/bench/src/timer.rs

/root/repo/target/debug/deps/libkremlin_bench-078d45e005f2d938.rlib: crates/bench/src/lib.rs crates/bench/src/progen.rs crates/bench/src/rng.rs crates/bench/src/timer.rs

/root/repo/target/debug/deps/libkremlin_bench-078d45e005f2d938.rmeta: crates/bench/src/lib.rs crates/bench/src/progen.rs crates/bench/src/rng.rs crates/bench/src/timer.rs

crates/bench/src/lib.rs:
crates/bench/src/progen.rs:
crates/bench/src/rng.rs:
crates/bench/src/timer.rs:
