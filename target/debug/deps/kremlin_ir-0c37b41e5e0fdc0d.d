/root/repo/target/debug/deps/kremlin_ir-0c37b41e5e0fdc0d.d: crates/ir/src/lib.rs crates/ir/src/cfg.rs crates/ir/src/controldep.rs crates/ir/src/dom.rs crates/ir/src/func.rs crates/ir/src/ids.rs crates/ir/src/indvar.rs crates/ir/src/instr.rs crates/ir/src/loops.rs crates/ir/src/lower.rs crates/ir/src/mem2reg.rs crates/ir/src/module.rs crates/ir/src/opt.rs crates/ir/src/printer.rs crates/ir/src/regions.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libkremlin_ir-0c37b41e5e0fdc0d.rlib: crates/ir/src/lib.rs crates/ir/src/cfg.rs crates/ir/src/controldep.rs crates/ir/src/dom.rs crates/ir/src/func.rs crates/ir/src/ids.rs crates/ir/src/indvar.rs crates/ir/src/instr.rs crates/ir/src/loops.rs crates/ir/src/lower.rs crates/ir/src/mem2reg.rs crates/ir/src/module.rs crates/ir/src/opt.rs crates/ir/src/printer.rs crates/ir/src/regions.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libkremlin_ir-0c37b41e5e0fdc0d.rmeta: crates/ir/src/lib.rs crates/ir/src/cfg.rs crates/ir/src/controldep.rs crates/ir/src/dom.rs crates/ir/src/func.rs crates/ir/src/ids.rs crates/ir/src/indvar.rs crates/ir/src/instr.rs crates/ir/src/loops.rs crates/ir/src/lower.rs crates/ir/src/mem2reg.rs crates/ir/src/module.rs crates/ir/src/opt.rs crates/ir/src/printer.rs crates/ir/src/regions.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/cfg.rs:
crates/ir/src/controldep.rs:
crates/ir/src/dom.rs:
crates/ir/src/func.rs:
crates/ir/src/ids.rs:
crates/ir/src/indvar.rs:
crates/ir/src/instr.rs:
crates/ir/src/loops.rs:
crates/ir/src/lower.rs:
crates/ir/src/mem2reg.rs:
crates/ir/src/module.rs:
crates/ir/src/opt.rs:
crates/ir/src/printer.rs:
crates/ir/src/regions.rs:
crates/ir/src/verify.rs:
