/root/repo/target/debug/deps/kremlin_minic-ffa5efc88747e588.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/span.rs crates/minic/src/token.rs crates/minic/src/typeck.rs crates/minic/src/types.rs

/root/repo/target/debug/deps/libkremlin_minic-ffa5efc88747e588.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/span.rs crates/minic/src/token.rs crates/minic/src/typeck.rs crates/minic/src/types.rs

/root/repo/target/debug/deps/libkremlin_minic-ffa5efc88747e588.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/error.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/pretty.rs crates/minic/src/span.rs crates/minic/src/token.rs crates/minic/src/typeck.rs crates/minic/src/types.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/error.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/pretty.rs:
crates/minic/src/span.rs:
crates/minic/src/token.rs:
crates/minic/src/typeck.rs:
crates/minic/src/types.rs:
