/root/repo/target/debug/deps/fig5_self_parallelism-9e956f5229242205.d: crates/bench/src/bin/fig5_self_parallelism.rs

/root/repo/target/debug/deps/fig5_self_parallelism-9e956f5229242205: crates/bench/src/bin/fig5_self_parallelism.rs

crates/bench/src/bin/fig5_self_parallelism.rs:
