/root/repo/target/debug/deps/pipeline-3180b19222a6c2ac.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-3180b19222a6c2ac: tests/pipeline.rs

tests/pipeline.rs:
