/root/repo/target/debug/deps/kremlin_sim-30d1bc46ea746aa7.d: crates/simulator/src/lib.rs

/root/repo/target/debug/deps/kremlin_sim-30d1bc46ea746aa7: crates/simulator/src/lib.rs

crates/simulator/src/lib.rs:
