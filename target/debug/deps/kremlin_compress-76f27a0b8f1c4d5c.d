/root/repo/target/debug/deps/kremlin_compress-76f27a0b8f1c4d5c.d: crates/compress/src/lib.rs

/root/repo/target/debug/deps/libkremlin_compress-76f27a0b8f1c4d5c.rlib: crates/compress/src/lib.rs

/root/repo/target/debug/deps/libkremlin_compress-76f27a0b8f1c4d5c.rmeta: crates/compress/src/lib.rs

crates/compress/src/lib.rs:
