/root/repo/target/debug/deps/tab_compression-b37506838dd28f32.d: crates/bench/src/bin/tab_compression.rs

/root/repo/target/debug/deps/tab_compression-b37506838dd28f32: crates/bench/src/bin/tab_compression.rs

crates/bench/src/bin/tab_compression.rs:
