/root/repo/target/debug/deps/tab_selfp_vs_totalp-5ac4bfcfbb6b0b7a.d: crates/bench/src/bin/tab_selfp_vs_totalp.rs

/root/repo/target/debug/deps/tab_selfp_vs_totalp-5ac4bfcfbb6b0b7a: crates/bench/src/bin/tab_selfp_vs_totalp.rs

crates/bench/src/bin/tab_selfp_vs_totalp.rs:
