/root/repo/target/debug/deps/kremlin-d2dd708ac5191f03.d: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

/root/repo/target/debug/deps/kremlin-d2dd708ac5191f03: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/persist.rs:
crates/core/src/report.rs:
