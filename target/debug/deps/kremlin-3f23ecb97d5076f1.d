/root/repo/target/debug/deps/kremlin-3f23ecb97d5076f1.d: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libkremlin-3f23ecb97d5076f1.rlib: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libkremlin-3f23ecb97d5076f1.rmeta: crates/core/src/lib.rs crates/core/src/persist.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/persist.rs:
crates/core/src/report.rs:
