/root/repo/target/debug/deps/fig6b_speedup-60068fb15b5a2be5.d: crates/bench/src/bin/fig6b_speedup.rs

/root/repo/target/debug/deps/fig6b_speedup-60068fb15b5a2be5: crates/bench/src/bin/fig6b_speedup.rs

crates/bench/src/bin/fig6b_speedup.rs:
