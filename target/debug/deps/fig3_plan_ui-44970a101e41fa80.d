/root/repo/target/debug/deps/fig3_plan_ui-44970a101e41fa80.d: crates/bench/src/bin/fig3_plan_ui.rs

/root/repo/target/debug/deps/fig3_plan_ui-44970a101e41fa80: crates/bench/src/bin/fig3_plan_ui.rs

crates/bench/src/bin/fig3_plan_ui.rs:
