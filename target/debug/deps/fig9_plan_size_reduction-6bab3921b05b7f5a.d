/root/repo/target/debug/deps/fig9_plan_size_reduction-6bab3921b05b7f5a.d: crates/bench/src/bin/fig9_plan_size_reduction.rs

/root/repo/target/debug/deps/fig9_plan_size_reduction-6bab3921b05b7f5a: crates/bench/src/bin/fig9_plan_size_reduction.rs

crates/bench/src/bin/fig9_plan_size_reduction.rs:
