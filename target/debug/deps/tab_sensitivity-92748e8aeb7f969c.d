/root/repo/target/debug/deps/tab_sensitivity-92748e8aeb7f969c.d: crates/bench/src/bin/tab_sensitivity.rs

/root/repo/target/debug/deps/tab_sensitivity-92748e8aeb7f969c: crates/bench/src/bin/tab_sensitivity.rs

crates/bench/src/bin/tab_sensitivity.rs:
