/root/repo/target/debug/deps/kremlin-0e87abc4d52d395b.d: crates/core/src/bin/kremlin.rs

/root/repo/target/debug/deps/kremlin-0e87abc4d52d395b: crates/core/src/bin/kremlin.rs

crates/core/src/bin/kremlin.rs:
