/root/repo/target/debug/deps/kremlin-dda914d87b9794f9.d: crates/core/src/bin/kremlin.rs

/root/repo/target/debug/deps/kremlin-dda914d87b9794f9: crates/core/src/bin/kremlin.rs

crates/core/src/bin/kremlin.rs:
