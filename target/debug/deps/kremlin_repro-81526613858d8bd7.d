/root/repo/target/debug/deps/kremlin_repro-81526613858d8bd7.d: src/lib.rs

/root/repo/target/debug/deps/kremlin_repro-81526613858d8bd7: src/lib.rs

src/lib.rs:
