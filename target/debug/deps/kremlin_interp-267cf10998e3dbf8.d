/root/repo/target/debug/deps/kremlin_interp-267cf10998e3dbf8.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/kremlin_interp-267cf10998e3dbf8: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/hooks.rs:
crates/interp/src/machine.rs:
crates/interp/src/memory.rs:
crates/interp/src/value.rs:
