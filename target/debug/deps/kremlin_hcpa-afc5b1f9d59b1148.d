/root/repo/target/debug/deps/kremlin_hcpa-afc5b1f9d59b1148.d: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

/root/repo/target/debug/deps/kremlin_hcpa-afc5b1f9d59b1148: crates/hcpa/src/lib.rs crates/hcpa/src/cost.rs crates/hcpa/src/profile.rs crates/hcpa/src/profiler.rs crates/hcpa/src/shadow.rs

crates/hcpa/src/lib.rs:
crates/hcpa/src/cost.rs:
crates/hcpa/src/profile.rs:
crates/hcpa/src/profiler.rs:
crates/hcpa/src/shadow.rs:
