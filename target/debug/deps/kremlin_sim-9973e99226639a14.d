/root/repo/target/debug/deps/kremlin_sim-9973e99226639a14.d: crates/simulator/src/lib.rs

/root/repo/target/debug/deps/libkremlin_sim-9973e99226639a14.rlib: crates/simulator/src/lib.rs

/root/repo/target/debug/deps/libkremlin_sim-9973e99226639a14.rmeta: crates/simulator/src/lib.rs

crates/simulator/src/lib.rs:
