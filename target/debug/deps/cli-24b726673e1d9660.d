/root/repo/target/debug/deps/cli-24b726673e1d9660.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-24b726673e1d9660: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_kremlin=/root/repo/target/debug/kremlin
