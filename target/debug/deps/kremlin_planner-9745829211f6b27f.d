/root/repo/target/debug/deps/kremlin_planner-9745829211f6b27f.d: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

/root/repo/target/debug/deps/kremlin_planner-9745829211f6b27f: crates/planner/src/lib.rs crates/planner/src/baseline.rs crates/planner/src/cilk.rs crates/planner/src/estimate.rs crates/planner/src/openmp.rs crates/planner/src/plan.rs

crates/planner/src/lib.rs:
crates/planner/src/baseline.rs:
crates/planner/src/cilk.rs:
crates/planner/src/estimate.rs:
crates/planner/src/openmp.rs:
crates/planner/src/plan.rs:
