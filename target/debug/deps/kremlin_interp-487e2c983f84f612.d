/root/repo/target/debug/deps/kremlin_interp-487e2c983f84f612.d: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libkremlin_interp-487e2c983f84f612.rlib: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libkremlin_interp-487e2c983f84f612.rmeta: crates/interp/src/lib.rs crates/interp/src/error.rs crates/interp/src/hooks.rs crates/interp/src/machine.rs crates/interp/src/memory.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/error.rs:
crates/interp/src/hooks.rs:
crates/interp/src/machine.rs:
crates/interp/src/memory.rs:
crates/interp/src/value.rs:
