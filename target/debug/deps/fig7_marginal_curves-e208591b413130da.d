/root/repo/target/debug/deps/fig7_marginal_curves-e208591b413130da.d: crates/bench/src/bin/fig7_marginal_curves.rs

/root/repo/target/debug/deps/fig7_marginal_curves-e208591b413130da: crates/bench/src/bin/fig7_marginal_curves.rs

crates/bench/src/bin/fig7_marginal_curves.rs:
