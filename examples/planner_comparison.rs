//! Planner personalities side by side (paper §5): the OpenMP planner's
//! nesting-free DP plan, the Cilk++ planner's nesting-aware plan, and the
//! Figure 9 baselines, on the same profile — plus the exclusion-list
//! workflow (§3: "they can rerun the planner with a list of excluded
//! regions and receive an updated plan").
//!
//! ```sh
//! cargo run --example planner_comparison
//! ```

use kremlin_repro::kremlin::{
    CilkPlanner, Kremlin, OpenMpPlanner, Personality, SelfPFilterPlanner, WorkOnlyPlanner,
};
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = kremlin_repro::workloads::by_name("mg").expect("mg workload");
    let analysis = Kremlin::new().analyze(w.source, &w.file_name())?;
    let profile = analysis.profile();
    let none = HashSet::new();

    let personalities: Vec<Box<dyn Personality>> = vec![
        Box::new(WorkOnlyPlanner::default()),
        Box::new(SelfPFilterPlanner::default()),
        Box::new(OpenMpPlanner::default()),
        Box::new(CilkPlanner::default()),
    ];
    for p in &personalities {
        let plan = p.plan(profile, &none);
        println!("--- personality `{}`: {} region(s)", p.name(), plan.len());
        println!("{}", plan.render());
    }

    // Exclusion workflow: the user cannot restructure the top
    // recommendation, so they exclude it and re-plan.
    let omp = OpenMpPlanner::default();
    let plan = omp.plan(profile, &none);
    if let Some(first) = plan.entries.first() {
        println!(
            "excluding `{}` (user: \"too hard to restructure\") and re-planning:",
            first.label
        );
        let exclude: HashSet<_> = [first.region].into_iter().collect();
        let replanned = omp.plan(profile, &exclude);
        println!("{replanned}");
        assert!(!replanned.contains(first.region));
    }
    Ok(())
}
