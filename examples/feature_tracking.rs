//! The paper's running example: analyze the SD-VBS `tracking` analogue
//! and reproduce the Figure 3 user experience, then drill into the
//! Figure 2 `fillFeatures` nest to show how HCPA localizes parallelism
//! to the innermost loop only.
//!
//! ```sh
//! cargo run --example feature_tracking
//! ```

use kremlin_repro::kremlin::Kremlin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = kremlin_repro::workloads::by_name("tracking").expect("tracking workload");
    let analysis = Kremlin::new().analyze(w.source, &w.file_name())?;

    println!("$> kremlin tracking --personality=openmp\n");
    println!("{}", analysis.plan_openmp());

    // Figure 2: the triple nest in fillFeatures. Only the innermost loop
    // (over features) is parallel; the outer pixel loops serialize through
    // the feature table's running maxima.
    println!("fillFeatures nest (paper Figure 2):");
    for label in ["fill_features#L0", "fill_features#L1", "fill_features#L2"] {
        let region = analysis.region(label)?;
        let stats = analysis.profile().stats(region).expect("executed");
        println!(
            "  {label:20} self-parallelism {:6.2}  (total-parallelism {:6.2}, {} iterations)",
            stats.self_p, stats.total_p, stats.avg_children as u64
        );
    }
    println!(
        "\nTraditional CPA would report the outer loops' total parallelism \
         and send the programmer to the wrong level; self-parallelism \
         exposes that only the k-loop is worth attacking."
    );
    Ok(())
}
