//! Recursion and task parallelism: HCPA handles recursive programs (each
//! activation is a dynamic region instance at its own depth), and the
//! Cilk++ personality recommends divide-and-conquer functions as
//! spawnable tasks — the workload class Kremlin's original Cilk++ planner
//! was built for (paper §5.2).
//!
//! ```sh
//! cargo run --release --example recursive_tasks
//! ```

use kremlin_repro::kremlin::Kremlin;

const PROGRAM: &str = r#"
float data[512];

// Divide-and-conquer reduction: the two halves are independent — a
// classic cilk_spawn opportunity invisible to loop-only planners.
float range_energy(int lo, int hi) {
    if (hi - lo <= 8) {
        float s = 0.0;
        for (int i = lo; i < hi; i++) {
            s += sqrt(fabs(data[i]) + 0.01) * data[i];
        }
        return s;
    }
    int mid = (lo + hi) / 2;
    float left = range_energy(lo, mid);
    float right = range_energy(mid, hi);
    return left + right;
}

int main() {
    for (int i = 0; i < 512; i++) {
        data[i] = (float) ((i * 37) % 101) * 0.1;
    }
    float total = 0.0;
    for (int rep = 0; rep < 4; rep++) {
        total += range_energy(0, 512);
    }
    return (int) total % 97;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Kremlin::new().analyze(PROGRAM, "dnc.kc")?;
    println!(
        "profiled {} dynamic regions, max nesting depth {} (recursion!)\n",
        analysis.outcome.stats.dynamic_regions, analysis.outcome.stats.max_depth
    );

    let region = analysis.region("range_energy")?;
    let stats = analysis.profile().stats(region).expect("executed");
    println!(
        "range_energy: {} activations, self-parallelism {:.1} (the two \
         recursive calls overlap)\n",
        stats.instances, stats.self_p
    );

    println!("OpenMP personality (loops only):\n{}", analysis.plan_openmp().render());
    let cilk = analysis.plan_cilk();
    println!("Cilk++ personality (sees the task):\n{}", cilk.render());
    assert!(cilk.contains(region), "the Cilk planner should recommend spawning range_energy");
    Ok(())
}
