//! Profile compression in action (paper §4.4): profile a deeply
//! iterative program and inspect the dictionary — dynamic region count,
//! alphabet size, estimated raw vs compressed bytes — then scale the
//! input and watch the ratio grow while the alphabet stays put.
//!
//! ```sh
//! cargo run --example compression_stats
//! ```

use kremlin_repro::kremlin::Kremlin;

fn program(reps: u32) -> String {
    format!(
        "float a[128];\n\
         int main() {{\n\
           for (int r = 0; r < {reps}; r++) {{\n\
             for (int i = 0; i < 128; i++) {{ a[i] = a[i] * 0.99 + (float) (i % 7); }}\n\
           }}\n\
           return (int) a[100];\n\
         }}"
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>12} {:>9} {:>11} {:>11} {:>9}",
        "reps", "dyn regions", "alphabet", "raw bytes", "compressed", "ratio"
    );
    for reps in [4u32, 16, 64, 256] {
        let analysis = Kremlin::new().analyze(&program(reps), "scale.kc")?;
        let dict = &analysis.profile().dict;
        println!(
            "{reps:>6} {:>12} {:>9} {:>11} {:>11} {:>8.0}x",
            dict.raw_summaries(),
            dict.len(),
            dict.raw_bytes(),
            dict.compressed_bytes(),
            dict.compression_ratio(),
        );
    }
    println!(
        "\nThe alphabet stops growing once every distinct region summary has \
         been seen; from then on, more execution only increases the ratio — \
         this is how the paper turned 54 GB traces into ~150 KB profiles, \
         and why the planner can analyze them without decompressing."
    );
    Ok(())
}
