//! Quickstart: profile a serial program and get a ranked parallelism
//! plan — the paper's three-command session as a library call.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kremlin_repro::kremlin::Kremlin;

const PROGRAM: &str = r#"
// A little image pipeline: a parallel brightness pass, a parallel
// convolution, and a serial running-average pass.
float img[64][64];
float out[64][64];
float hist[64];

void brighten() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            img[i][j] = img[i][j] * 1.1 + 3.0;
        }
    }
}

void convolve() {
    for (int i = 1; i < 63; i++) {
        for (int j = 1; j < 63; j++) {
            out[i][j] = (img[i-1][j] + img[i+1][j] + img[i][j-1] + img[i][j+1]) * 0.2
                + img[i][j] * 0.2;
        }
    }
}

// Serial: each row's statistic depends on the previous row's.
void row_stats() {
    hist[0] = out[0][0];
    for (int i = 1; i < 64; i++) {
        hist[i] = hist[i-1] * 0.9 + out[i][i] * 0.1;
    }
}

int main() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) { img[i][j] = (float) ((i * j) % 17); }
    }
    brighten();
    convolve();
    row_stats();
    return (int) hist[63];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile, instrument, execute, and profile (paper Figure 4).
    let analysis = Kremlin::new().analyze(PROGRAM, "pipeline.kc")?;
    println!(
        "profiled {} dynamic regions across {} executed instructions\n",
        analysis.outcome.stats.dynamic_regions, analysis.outcome.run.instrs_executed
    );

    // 2. Ask the OpenMP personality which regions to parallelize first.
    let plan = analysis.plan_openmp();
    println!("{plan}");

    // 3. Estimate what following the plan buys (best of 1..32 cores).
    let eval = analysis.evaluate(&plan);
    println!(
        "following the plan: {:.2}x estimated speedup on {} cores",
        eval.speedup, eval.best_cores
    );

    // The serial row_stats loop is correctly absent from the plan.
    let serial = analysis.region("row_stats#L0")?;
    assert!(!plan.contains(serial), "serial loop must not be recommended");
    println!("\n(row_stats#L0 was analyzed and correctly rejected: its SP is ~1)");
    Ok(())
}
