//! Writing your own planner personality (paper §5.3: "planning
//! personalities provide an avenue for the user to tailor planning
//! recommendations to different systems").
//!
//! This one models a GPU-offload system: it only wants *massive* flat
//! parallelism (SP ≥ 64), only DOALL loops (no cross-iteration
//! synchronization on a GPU), and insists on large per-invocation work to
//! amortize kernel-launch latency.
//!
//! ```sh
//! cargo run --example custom_personality
//! ```

use kremlin_repro::hcpa::ParallelismProfile;
use kremlin_repro::ir::{RegionId, RegionKind};
use kremlin_repro::kremlin::{Kremlin, Personality, Plan};
use kremlin_repro::planner::{OpenMpPlanner, PlanEntry, PlanKind};
use std::collections::HashSet;

/// A GPU-offload personality.
struct GpuOffload {
    min_sp: f64,
    min_invocation_work: u64,
}

impl Personality for GpuOffload {
    fn name(&self) -> &'static str {
        "gpu-offload"
    }

    fn plan(&self, profile: &ParallelismProfile, exclude: &HashSet<RegionId>) -> Plan {
        let mut entries: Vec<PlanEntry> = profile
            .iter()
            .filter(|s| {
                s.kind == RegionKind::Loop
                    && !exclude.contains(&s.region)
                    && s.is_doall
                    && s.self_p >= self.min_sp
                    && s.total_work / s.instances.max(1) >= self.min_invocation_work
            })
            .map(|s| PlanEntry {
                region: s.region,
                label: s.label.clone(),
                location: s.location.clone(),
                self_p: s.self_p,
                coverage: s.coverage,
                est_speedup: 1.0 / (1.0 - s.coverage * (1.0 - 1.0 / s.self_p)).max(1e-9),
                kind: PlanKind::Doall,
                verdict: None,
            })
            .collect();
        entries.sort_by(|a, b| b.est_speedup.total_cmp(&a.est_speedup));
        Plan { personality: self.name().into(), entries }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = kremlin_repro::workloads::by_name("bt").expect("bt workload");
    let analysis = Kremlin::new().analyze(w.source, &w.file_name())?;
    let none = HashSet::new();

    let gpu = GpuOffload { min_sp: 60.0, min_invocation_work: 100_000 };
    let gpu_plan = gpu.plan(analysis.profile(), &none);
    let omp_plan = OpenMpPlanner::default().plan(analysis.profile(), &none);

    println!("OpenMP personality ({} regions):\n{}", omp_plan.len(), omp_plan.render());
    println!("GPU personality    ({} regions):\n{}", gpu_plan.len(), gpu_plan.render());
    println!(
        "The GPU personality is a strict subset of the OpenMP one: {} of {} \
         regions survive its harsher constraints — the accuracy/portability \
         trade-off of paper §5.3 in ~40 lines of Rust.",
        gpu_plan.len(),
        omp_plan.len()
    );
    assert!(gpu_plan.regions().is_subset(&omp_plan.regions()) || gpu_plan.is_empty());
    Ok(())
}
