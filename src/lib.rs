//! Integration-test and example host package for the kremlin-rs workspace.
//!
//! All functionality lives in the `crates/` members; this crate simply
//! re-exports the public façade so examples and integration tests can use a
//! single import root.

pub use kremlin;
pub use kremlin_compress as compress;
pub use kremlin_hcpa as hcpa;
pub use kremlin_interp as interp;
pub use kremlin_ir as ir;
pub use kremlin_minic as minic;
pub use kremlin_obs as obs;
pub use kremlin_planner as planner;
pub use kremlin_sim as sim;
pub use kremlin_workloads as workloads;
