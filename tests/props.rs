//! Property-style tests over generated programs and profiles.
//!
//! Program generation sticks to a well-typed subset by construction:
//! random loop nests with random per-loop body statements drawn from
//! DOALL updates, reductions, recurrences, and branches — enough to
//! exercise the lexer/parser round-trip, interpreter determinism, and the
//! HCPA invariants on arbitrary nesting structures.
//!
//! Formerly proptest-based; now driven by the in-repo seeded generator
//! (`kremlin_bench::progen`) so the default workspace builds with zero
//! external crates. Every case is reproducible: failures print the case
//! seed and the generated source.

use kremlin_bench::{progen, XorShift};
use std::collections::HashSet;

const CASES: u64 = 48;

/// Runs `check` over `CASES` generated programs, reporting the seed and
/// source on failure.
fn for_each_program(base_seed: u64, deep: bool, mut check: impl FnMut(&str)) {
    for case in 0..CASES {
        let seed = base_seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let src = progen::program(&mut XorShift::new(seed), deep);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&src)));
        if let Err(e) = result {
            eprintln!("failing case seed {seed:#x}:\n{src}");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn generated_programs_compile_and_run() {
    for_each_program(0xC0FFEE, false, |src| {
        let unit = kremlin_repro::ir::compile(src, "gen.kc").expect("compiles");
        kremlin_repro::ir::verify::verify_module(&unit.module).expect("verifies");
        let r = kremlin_repro::interp::run(&unit.module).expect("runs");
        // Deterministic.
        let r2 = kremlin_repro::interp::run(&unit.module).expect("runs");
        assert_eq!(r.exit, r2.exit);
        assert_eq!(r.instrs_executed, r2.instrs_executed);
    });
}

#[test]
fn hcpa_invariants_hold_on_generated_programs() {
    for_each_program(0xBEEF, true, |src| {
        let analysis =
            kremlin_repro::kremlin::Kremlin::new().analyze(src, "gen.kc").expect("analyzes");
        let dict = &analysis.profile().dict;
        let sp = dict.self_parallelism();
        let tp = dict.total_parallelism();
        for (id, e) in dict.iter() {
            // cp never exceeds work; work is conserved down the tree.
            assert!(e.cp <= e.work.max(1));
            let child_work: u64 = e.children.iter().map(|(c, n)| n * dict.entry(*c).work).sum();
            assert!(e.work >= child_work);
            // 1 <= SP; leaf SP equals total parallelism.
            assert!(sp[id.index()] >= 0.99);
            if e.children.is_empty() {
                assert!((sp[id.index()] - tp[id.index()]).abs() < 1e-9);
            }
        }
        // Profiling must not change semantics.
        let plain = kremlin_repro::interp::run(&analysis.unit.module).expect("runs");
        assert_eq!(plain.exit, analysis.outcome.run.exit);
    });
}

#[test]
fn openmp_plans_are_antichains_on_generated_programs() {
    for_each_program(0xFACE, false, |src| {
        let analysis =
            kremlin_repro::kremlin::Kremlin::new().analyze(src, "gen.kc").expect("analyzes");
        let plan = analysis.plan_openmp();
        let regions: HashSet<_> = plan.regions();
        for &r in &regions {
            let desc = analysis.profile().descendants(r);
            for &o in &regions {
                assert!(o == r || !desc.contains(&o));
            }
        }
        // Every entry is estimated to help.
        for e in &plan.entries {
            assert!(e.est_speedup >= 1.0);
            assert!(e.self_p >= 5.0);
        }
    });
}

#[test]
fn scenario_classes_compile_verify_and_replay_bit_identically() {
    use kremlin_repro::hcpa::ReplayStrategy;
    use kremlin_repro::kremlin::Kremlin;
    use kremlin_workloads::scenario::{ScenarioSpec, CLASSES};

    // A seeded sample per class on top of each class's canonical floor,
    // so every lowering path is exercised at both extremes.
    let mut rng = XorShift::new(0x5EED_C0DE);
    let mut specs: Vec<ScenarioSpec> =
        CLASSES.iter().map(|&c| kremlin_workloads::scenario::minimal(c)).collect();
    for &class in &CLASSES {
        let mut s = ScenarioSpec::sample(&mut rng);
        s.class = class;
        specs.push(s.normalized());
    }

    for spec in specs {
        let src = spec.lower();
        let name = spec.file_name();
        let unit = kremlin_repro::ir::compile(&src, &name)
            .unwrap_or_else(|e| panic!("{spec}: does not compile: {e}\n{src}"));
        kremlin_repro::ir::verify::verify_module(&unit.module)
            .unwrap_or_else(|e| panic!("{spec}: fails IR verification: {e}"));

        // Record once, then both replay engines must reproduce the
        // live profile bit-for-bit under sharding.
        let (live, trace) = Kremlin::new()
            .analyze_recorded(&src, &name, 1)
            .unwrap_or_else(|e| panic!("{spec}: does not record: {e}"));
        for strategy in [ReplayStrategy::Decoded, ReplayStrategy::Streaming] {
            let mut tool = Kremlin::new();
            tool.replay_strategy = strategy;
            let replayed = tool
                .analyze_trace(&trace, 3)
                .unwrap_or_else(|e| panic!("{spec}: {strategy:?} replay fails: {e}"));
            assert!(
                replayed.profile().identical_stats(live.profile()),
                "{spec}: {strategy:?} sharded replay diverges from the live profile"
            );
        }
    }
}

#[test]
fn iteration_space_oracle_agrees_on_fuzzed_specs() {
    use kremlin_repro::kremlin::oracle;
    use kremlin_workloads::scenario::ScenarioSpec;

    // The dependence-test ladder's correctness backbone: on 200
    // fuzzer-generated specs, enumerate every loop instance's concrete
    // address touches and demand that no provably-doall loop shows a
    // cross-iteration conflict and every memory-proven carried(d)
    // verdict is witnessed at exactly distance d.
    const SEEDS: u64 = 200;
    let mut rng = XorShift::new(0x17E2_A710_5ACE);
    for case in 0..SEEDS {
        let spec = ScenarioSpec::sample(&mut rng);
        let src = spec.lower();
        let unit = kremlin_repro::ir::compile(&src, &spec.file_name())
            .unwrap_or_else(|e| panic!("case {case} {spec}: does not compile: {e}\n{src}"));
        let obs = oracle::enumerate(&unit, kremlin_repro::interp::MachineConfig::default())
            .unwrap_or_else(|e| panic!("case {case} {spec}: does not run: {e}"));
        let violations = oracle::check(&unit, &obs);
        assert!(
            violations.is_empty(),
            "case {case} {spec}: static verdicts contradict the enumeration:\n{}\n{src}",
            violations.join("\n")
        );
    }
}

#[test]
fn parser_pretty_roundtrip() {
    for_each_program(0xD00D, true, |src| {
        let ast = kremlin_repro::minic::parser::parse(src).expect("parses");
        let printed = kremlin_repro::minic::pretty::program(&ast);
        let reparsed = kremlin_repro::minic::parser::parse(&printed).expect("reparses");
        let reprinted = kremlin_repro::minic::pretty::program(&reparsed);
        assert_eq!(printed, reprinted, "pretty-printing must be a fixed point");
    });
}

#[test]
fn simulation_times_are_sane() {
    for_each_program(0xAB1E, false, |src| {
        let analysis =
            kremlin_repro::kremlin::Kremlin::new().analyze(src, "gen.kc").expect("analyzes");
        let plan = analysis.plan_openmp();
        let eval = analysis.evaluate(&plan);
        assert!(eval.serial_time > 0.0);
        assert!(eval.parallel_time > 0.0);
        assert!(eval.parallel_time.is_finite());
        // Best-of-cores with an empty-plan option in the sweep can never
        // be worse than ~serial plus one fork-join.
        assert!(eval.parallel_time <= eval.serial_time * 1.5 + 10_000.0);
    });
}
