//! Property-based tests (proptest) over generated programs and profiles.
//!
//! Program generation sticks to a well-typed subset by construction:
//! random loop nests with random per-loop body statements drawn from
//! DOALL updates, reductions, recurrences, and branches — enough to
//! exercise the lexer/parser round-trip, interpreter determinism, and the
//! HCPA invariants on arbitrary nesting structures.

use proptest::prelude::*;
use std::collections::HashSet;

/// One statement template inside a generated loop body.
#[derive(Debug, Clone)]
enum Body {
    /// `a[i] = f(i)` — independent iterations.
    Doall,
    /// `s += a[i]` — reduction.
    Reduce,
    /// `a[i] = a[i-1] * c + 1` — loop-carried recurrence.
    Recurrence,
    /// `if (i % 2) { a[i] = ...; }` — control dependence.
    Branch,
}

fn body_strategy() -> impl Strategy<Value = Body> {
    prop_oneof![
        Just(Body::Doall),
        Just(Body::Reduce),
        Just(Body::Recurrence),
        Just(Body::Branch),
    ]
}

/// A generated program: up to 3 sequential loop nests, each 1–2 deep,
/// with 4–16 iterations per level.
fn program_strategy() -> impl Strategy<Value = String> {
    let nest = (body_strategy(), 1usize..3, 4u32..17).prop_map(|(body, depth, iters)| {
        let stmt = |v: &str| match body {
            Body::Doall => format!("a[{v}] = (float) {v} * 1.5 + 1.0;"),
            Body::Reduce => format!("s += a[{v}] * 0.5;"),
            Body::Recurrence => {
                format!("if ({v} > 0) {{ a[{v}] = a[{v} - 1] * 0.9 + 1.0; }}")
            }
            Body::Branch => {
                format!("if ({v} % 2 == 0) {{ a[{v}] = 2.0; }} else {{ a[{v}] = 3.0; }}")
            }
        };
        if depth == 1 {
            format!(
                "for (int i = 0; i < {iters}; i++) {{ {} }}",
                stmt("i")
            )
        } else {
            format!(
                "for (int i = 0; i < {iters}; i++) {{ for (int j = 0; j < {iters}; j++) {{ {} }} }}",
                stmt("j")
            )
        }
    });
    proptest::collection::vec(nest, 1..4).prop_map(|nests| {
        format!(
            "float a[32]; \n\
             int main() {{ float s = 0.0; {} return (int) s; }}",
            nests.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_compile_and_run(src in program_strategy()) {
        let unit = kremlin_repro::ir::compile(&src, "gen.kc").expect("compiles");
        kremlin_repro::ir::verify::verify_module(&unit.module).expect("verifies");
        let r = kremlin_repro::interp::run(&unit.module).expect("runs");
        // Deterministic.
        let r2 = kremlin_repro::interp::run(&unit.module).expect("runs");
        prop_assert_eq!(r.exit, r2.exit);
        prop_assert_eq!(r.instrs_executed, r2.instrs_executed);
    }

    #[test]
    fn hcpa_invariants_hold_on_generated_programs(src in program_strategy()) {
        let analysis = kremlin_repro::kremlin::Kremlin::new()
            .analyze(&src, "gen.kc")
            .expect("analyzes");
        let dict = &analysis.profile().dict;
        let sp = dict.self_parallelism();
        let tp = dict.total_parallelism();
        let counts = dict.instance_counts();
        for (id, e) in dict.iter() {
            // cp never exceeds work; work is conserved down the tree.
            prop_assert!(e.cp <= e.work.max(1));
            let child_work: u64 = e.children.iter().map(|(c, n)| n * dict.entry(*c).work).sum();
            prop_assert!(e.work >= child_work);
            // 1 <= SP; leaf SP equals total parallelism.
            prop_assert!(sp[id.index()] >= 0.99);
            if e.children.is_empty() {
                prop_assert!((sp[id.index()] - tp[id.index()]).abs() < 1e-9);
            }
            let _ = counts;
        }
        // Profiling must not change semantics.
        let plain = kremlin_repro::interp::run(&analysis.unit.module).expect("runs");
        prop_assert_eq!(plain.exit, analysis.outcome.run.exit);
    }

    #[test]
    fn openmp_plans_are_antichains_on_generated_programs(src in program_strategy()) {
        let analysis = kremlin_repro::kremlin::Kremlin::new()
            .analyze(&src, "gen.kc")
            .expect("analyzes");
        let plan = analysis.plan_openmp();
        let regions: HashSet<_> = plan.regions();
        for &r in &regions {
            let desc = analysis.profile().descendants(r);
            for &o in &regions {
                prop_assert!(o == r || !desc.contains(&o));
            }
        }
        // Every entry is estimated to help.
        for e in &plan.entries {
            prop_assert!(e.est_speedup >= 1.0);
            prop_assert!(e.self_p >= 5.0);
        }
    }

    #[test]
    fn parser_pretty_roundtrip(src in program_strategy()) {
        let ast = kremlin_repro::minic::parser::parse(&src).expect("parses");
        let printed = kremlin_repro::minic::pretty::program(&ast);
        let reparsed = kremlin_repro::minic::parser::parse(&printed).expect("reparses");
        let reprinted = kremlin_repro::minic::pretty::program(&reparsed);
        prop_assert_eq!(printed, reprinted, "pretty-printing must be a fixed point");
    }

    #[test]
    fn simulation_times_are_sane(src in program_strategy()) {
        let analysis = kremlin_repro::kremlin::Kremlin::new()
            .analyze(&src, "gen.kc")
            .expect("analyzes");
        let plan = analysis.plan_openmp();
        let eval = analysis.evaluate(&plan);
        prop_assert!(eval.serial_time > 0.0);
        prop_assert!(eval.parallel_time > 0.0);
        prop_assert!(eval.parallel_time.is_finite());
        // Best-of-cores with an empty-plan option in the sweep can never
        // be worse than ~serial plus one fork-join.
        prop_assert!(eval.parallel_time <= eval.serial_time * 1.5 + 10_000.0);
    }
}
