//! Integration tests for the `kremlin-obs` observability layer: the
//! disabled-mode no-op guarantees, span-nesting balance over the full
//! workload suite, and the persisted JSON snapshot schema.
//!
//! The obs registry and the enable flags are process-global, so every
//! test here serializes on one mutex and resets the layer before and
//! after touching it.

use kremlin_repro::obs;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn clean_slate() -> MutexGuard<'static, ()> {
    let guard = lock();
    obs::set_metrics(false);
    obs::set_tracing(false);
    obs::reset();
    guard
}

/// Runs the full pipeline (parse → lower → interp → shadow → plan) on one
/// workload source.
fn analyze(source: &str, file: &str) {
    let analysis =
        kremlin_repro::kremlin::Kremlin::new().analyze(source, file).expect("workload analyzes");
    let _ = analysis.plan_openmp();
}

#[test]
fn disabled_layer_records_nothing() {
    let _guard = clean_slate();

    let c = obs::counter("obs_it.disabled_counter");
    let g = obs::gauge("obs_it.disabled_gauge");
    let h = obs::histogram("obs_it.disabled_hist");
    c.add(41);
    c.incr();
    g.set(7);
    g.set_max(9);
    h.record(1024);
    {
        let _span = obs::span("obs_it.disabled_span");
    }

    assert_eq!(c.get(), 0, "disabled counter must not move");
    assert_eq!(g.get(), 0, "disabled gauge must not move");
    assert_eq!(h.total(), 0, "disabled histogram must not move");
    assert_eq!(obs::open_spans(), 0);
    assert!(obs::take_trace().is_empty(), "disabled span must not trace");

    // A full pipeline run with the layer off must leave an empty snapshot.
    let w = kremlin_repro::workloads::by_name("cg").expect("cg exists");
    analyze(w.source, &w.file_name());
    let snap = obs::snapshot();
    assert!(snap.is_noop(), "disabled pipeline left metrics behind: {}", snap.to_json());
    obs::reset();
}

#[test]
fn spans_balance_across_every_workload() {
    let _guard = clean_slate();

    for w in kremlin_repro::workloads::all() {
        obs::set_metrics(true);
        obs::set_tracing(true);
        analyze(w.source, &w.file_name());
        obs::set_metrics(false);
        obs::set_tracing(false);

        assert_eq!(obs::open_spans(), 0, "unbalanced spans after workload {}", w.name);
        let trace = obs::take_trace();
        assert!(!trace.is_empty(), "no spans traced for workload {}", w.name);
        for phase in ["parse", "lower", "interp", "shadow", "plan"] {
            assert!(
                trace.iter().any(|e| e.name == phase),
                "workload {} traced no `{phase}` span",
                w.name
            );
        }
        // Nesting sanity: a span at depth d+1 only exists inside some span
        // at depth d, so every depth from 0 up to the max must occur.
        let max_depth = trace.iter().map(|e| e.depth).max().unwrap();
        for d in 0..=max_depth {
            assert!(
                trace.iter().any(|e| e.depth == d),
                "workload {} has a depth gap at {d}",
                w.name
            );
        }
        obs::reset();
    }
}

#[test]
fn sharded_replay_publishes_per_shard_worker_metrics() {
    let _guard = clean_slate();

    let w = kremlin_repro::workloads::by_name("bt").expect("bt exists");
    let unit = kremlin_repro::ir::compile(w.source, &w.file_name()).expect("compiles");
    let trace = kremlin_repro::interp::record(
        &unit.module,
        kremlin_repro::interp::MachineConfig::default(),
    )
    .expect("record");

    obs::set_metrics(true);
    let jobs = 3;
    kremlin_repro::hcpa::profile_trace_parallel(
        &unit,
        &trace,
        kremlin_repro::hcpa::ParallelConfig { jobs, ..Default::default() },
    )
    .expect("sharded replay");
    obs::set_metrics(false);

    let snap = obs::snapshot();
    for shard in 0..jobs {
        assert_eq!(
            snap.counter(&format!("shard.{shard}.events")),
            trace.events(),
            "shard {shard} must replay the whole shared trace"
        );
        assert!(
            snap.counter(&format!("shard.{shard}.instr_events")) > 0,
            "shard {shard} touched no instruction events"
        );
        assert!(
            snap.counter(&format!("shard.{shard}.shadow_live_pages")) > 0,
            "shard {shard} reported no shadow slots"
        );
        assert!(
            snap.gauge(&format!("shard.{shard}.wall_us")) > 0,
            "shard {shard} reported no wall time"
        );
    }
    // The snapshot survives its own JSON round trip with dynamic names.
    let restored = obs::Snapshot::from_json(&snap.to_json()).expect("parses");
    assert_eq!(snap, restored);
    obs::reset();
}

#[test]
fn snapshot_schema_round_trips_through_a_file() {
    let _guard = clean_slate();

    obs::set_metrics(true);
    obs::set_tracing(true);
    let w = kremlin_repro::workloads::by_name("bt").expect("bt exists");
    analyze(w.source, &w.file_name());
    obs::set_metrics(false);
    obs::set_tracing(false);

    let snap = obs::snapshot();
    assert!(!snap.is_noop(), "enabled pipeline produced no metrics");

    let path = std::env::temp_dir().join("kremlin-obs-roundtrip.json");
    std::fs::write(&path, snap.to_json()).expect("persist snapshot");
    let restored =
        obs::Snapshot::from_json(&std::fs::read_to_string(&path).expect("read snapshot back"))
            .expect("snapshot parses");

    assert_eq!(snap, restored, "snapshot JSON round-trip must be lossless");
    for key in
        ["minic.funcs", "ir.regions", "interp.instrs", "hcpa.instr_events", "planner.candidates"]
    {
        assert!(restored.counter(key) > 0, "restored snapshot lost counter {key}");
    }
    assert!(restored.phase("interp").is_some());

    // The trace side persists as JSONL: one valid object per line.
    let trace = obs::take_trace();
    let jsonl = obs::trace_to_jsonl(&trace);
    assert_eq!(jsonl.lines().count(), trace.len());
    for line in jsonl.lines() {
        let v = obs::json::parse(line).expect("every trace line is valid JSON");
        assert!(v.get("span").and_then(|n| n.as_str()).is_some());
        assert!(v.get("dur_us").and_then(|d| d.as_f64()).is_some());
    }
    obs::reset();
}
