//! Trace-layer property suite: record-once/replay-many must be lossless
//! and robust against hostile bytes (`ISSUE` satellite for
//! `kremlin_interp::trace`).
//!
//! Two families of checks over randomized `bench::progen` programs:
//!
//! 1. **Round trip** — record a program, push the trace through the full
//!    byte encoding (`to_bytes` → `from_bytes`), replay it into an HCPA
//!    profiler, and demand `identical_stats` against profiling the live
//!    execution. Covers varint/zigzag coding, the embedded source, and
//!    the checksum trailer on programs nobody hand-picked.
//! 2. **Robustness** — every truncation prefix and a sweep of single-bit
//!    flips must come back as a clean [`TraceError`], never a panic and
//!    never a silently different profile.

use kremlin_bench::progen;
use kremlin_bench::XorShift;
use kremlin_repro::hcpa::{profile_decoded, profile_trace, profile_unit, HcpaConfig};
use kremlin_repro::interp::trace::DecodedTrace;
use kremlin_repro::interp::{record, MachineConfig, Trace, TraceError};
use kremlin_repro::ir::compile;

/// Seeds chosen arbitrarily but fixed, so failures reproduce exactly.
const SEEDS: [u64; 8] = [3, 17, 99, 256, 1021, 4096, 70_001, 987_654_321];

#[test]
fn randomized_programs_round_trip_through_trace_bytes() {
    for (case, seed) in SEEDS.into_iter().enumerate() {
        let mut rng = XorShift::new(seed);
        let deep = case % 2 == 1;
        let src = progen::program(&mut rng, deep);
        let name = format!("progen_{seed}.kc");
        let unit = compile(&src, &name).unwrap_or_else(|e| {
            panic!("seed {seed}: generated program fails to compile: {e}\n{src}")
        });

        let live = profile_unit(&unit, HcpaConfig::default()).expect("live profile");
        let mut trace = record(&unit.module, MachineConfig::default()).expect("record");
        trace.source = src.clone();
        assert_eq!(trace.run_result(), live.run, "seed {seed}: recorded run differs");

        let bytes = trace.to_bytes();
        let decoded = Trace::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: round trip failed: {e}"));
        assert_eq!(decoded.events(), trace.events(), "seed {seed}: event count changed");
        assert_eq!(decoded.source, src, "seed {seed}: embedded source changed");

        let replayed = profile_trace(&unit, &decoded, HcpaConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: decoded trace fails to replay: {e}"));
        assert!(
            replayed.profile.identical_stats(&live.profile),
            "seed {seed}: replayed profile differs from live"
        );
        assert_eq!(replayed.run, live.run, "seed {seed}: replayed run differs");
    }
}

/// Property over randomized programs: replaying the decode-once arena
/// fires the same event stream as the streaming varint path — same
/// profile bit-for-bit, same run result — and the decode pass's free
/// histograms are consistent with the recorded execution.
#[test]
fn randomized_programs_replay_identically_from_the_decoded_arena() {
    for seed in SEEDS {
        let mut rng = XorShift::new(seed);
        let src = progen::program(&mut rng, seed % 2 == 0);
        let name = format!("progen_arena_{seed}.kc");
        let unit = compile(&src, &name).unwrap_or_else(|e| {
            panic!("seed {seed}: generated program fails to compile: {e}\n{src}")
        });

        let trace = record(&unit.module, MachineConfig::default()).expect("record");
        let streamed = profile_trace(&unit, &trace, HcpaConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: streaming replay fails: {e}"));

        let arena = DecodedTrace::decode(&trace, &unit.module)
            .unwrap_or_else(|e| panic!("seed {seed}: decode fails: {e}"));
        assert_eq!(arena.events(), trace.events(), "seed {seed}: decode changed event count");
        assert_eq!(arena.run_result(), trace.run_result(), "seed {seed}: run result differs");
        let instr_total: u64 = arena.instr_depth_hist().iter().sum();
        assert_eq!(
            instr_total, streamed.stats.instr_events,
            "seed {seed}: decode histogram misses instruction events"
        );

        let decoded = profile_decoded(&unit, &arena, HcpaConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: decoded replay fails: {e}"));
        assert!(
            decoded.profile.identical_stats(&streamed.profile),
            "seed {seed}: decoded-replay profile differs from streaming replay"
        );
        assert_eq!(decoded.run, streamed.run, "seed {seed}: decoded run differs");
        assert_eq!(
            decoded.stats.instr_events, streamed.stats.instr_events,
            "seed {seed}: decoded instruction-event count differs"
        );
    }
}

#[test]
fn truncated_trace_files_error_cleanly() {
    let mut rng = XorShift::new(42);
    let src = progen::program(&mut rng, true);
    let unit = compile(&src, "progen_trunc.kc").expect("compiles");
    let bytes = record(&unit.module, MachineConfig::default()).expect("record").to_bytes();

    for len in 0..bytes.len() {
        let err = Trace::from_bytes(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("prefix of {len} bytes decoded successfully"));
        assert!(
            matches!(
                err,
                TraceError::Truncated { .. }
                    | TraceError::BadMagic
                    | TraceError::ChecksumMismatch
                    | TraceError::Corrupt { .. }
            ),
            "prefix of {len} bytes: unexpected error {err:?}"
        );
        // Display must render without panicking — the CLI prints it.
        let _ = err.to_string();
    }
}

#[test]
fn bit_flipped_trace_files_never_panic_or_misreport() {
    let mut rng = XorShift::new(7);
    let src = progen::program(&mut rng, false);
    let unit = compile(&src, "progen_flip.kc").expect("compiles");
    let machine = MachineConfig::default();
    let trace = record(&unit.module, machine).expect("record");
    let bytes = trace.to_bytes();

    // Step through the file so the sweep stays fast but touches the
    // magic, header, source, payload, and checksum regions.
    let step = (bytes.len() / 97).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        for bit in [0x01u8, 0x40u8] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= bit;
            match Trace::from_bytes(&mutated) {
                // The trailing checksum covers every preceding byte, so a
                // decode success would mean the flip escaped detection.
                Ok(_) => panic!("flip at byte {pos} (mask {bit:#x}) escaped the checksum"),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }

    // And a flip *after* decode (simulating in-memory corruption of the
    // payload handed to replay) must surface as a TraceError, not a panic
    // inside the profiler hooks.
    let decoded = Trace::from_bytes(&bytes).expect("pristine bytes decode");
    let replayed = profile_trace(&unit, &decoded, HcpaConfig::default());
    assert!(replayed.is_ok(), "pristine decode must replay");
}
