//! Workload-suite validation: every benchmark analogue compiles, runs
//! deterministically, has a resolvable MANUAL plan, and profiles into a
//! well-formed parallelism profile.

use kremlin_repro::ir::RegionKind;
use kremlin_repro::kremlin::Kremlin;

#[test]
fn every_workload_compiles_runs_and_profiles() {
    for w in kremlin_repro::workloads::all() {
        let analysis = Kremlin::new()
            .analyze(w.source, &w.file_name())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            analysis.outcome.run.instrs_executed > 10_000,
            "{}: trivially small ({} instrs)",
            w.name,
            analysis.outcome.run.instrs_executed
        );
        assert!(analysis.profile().root.is_some(), "{}: no root region", w.name);
    }
}

#[test]
fn every_manual_label_resolves_to_a_loop_that_executed() {
    for w in kremlin_repro::workloads::all() {
        let analysis = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
        for label in w.manual_plan {
            let region = analysis.region(label).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let stats = analysis
                .profile()
                .stats(region)
                .unwrap_or_else(|| panic!("{}: {label} never executed", w.name));
            assert_eq!(
                stats.kind,
                RegionKind::Loop,
                "{}: MANUAL label {label} is not a loop",
                w.name
            );
        }
    }
}

#[test]
fn workload_runs_are_deterministic() {
    for w in kremlin_repro::workloads::all() {
        let a = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
        let b = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
        assert_eq!(a.outcome.run.exit, b.outcome.run.exit, "{}", w.name);
        assert_eq!(a.outcome.run.instrs_executed, b.outcome.run.instrs_executed, "{}", w.name);
        // Profiles are identical too (dictionary sizes as a proxy).
        assert_eq!(a.profile().dict.len(), b.profile().dict.len(), "{}", w.name);
        assert_eq!(a.profile().root_work, b.profile().root_work, "{}", w.name);
    }
}

#[test]
fn profiles_satisfy_structural_invariants() {
    for w in kremlin_repro::workloads::all() {
        let analysis = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
        let profile = analysis.profile();
        let dict = &profile.dict;
        let sp = dict.self_parallelism();
        for (id, e) in dict.iter() {
            assert!(e.cp <= e.work.max(1), "{}: cp > work in {id}", w.name);
            let child_work: u64 = e.children.iter().map(|(c, n)| n * dict.entry(*c).work).sum();
            assert!(e.work >= child_work, "{}: child work exceeds parent in {id}", w.name);
            assert!(sp[id.index()] >= 0.99, "{}: SP < 1 in {id}", w.name);
        }
        // Coverage of the root is 1; every other coverage is in (0, 1].
        for s in profile.iter() {
            assert!(s.coverage > 0.0 && s.coverage <= 1.0 + 1e-9, "{}: {}", w.name, s.label);
            assert!(s.instances > 0);
        }
    }
}

#[test]
fn kremlin_never_recommends_more_total_regions_than_manual_overall() {
    // Figure 6a's headline: Kremlin plans are smaller in aggregate.
    let mut manual = 0usize;
    let mut kremlin = 0usize;
    for w in kremlin_repro::workloads::all() {
        if w.paper.is_none() {
            continue;
        }
        let analysis = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
        manual += w.manual_plan.len();
        kremlin += analysis.plan_openmp().len();
    }
    assert!(kremlin < manual, "Kremlin total {kremlin} should be below MANUAL total {manual}");
    let ratio = manual as f64 / kremlin as f64;
    assert!(
        (1.2..2.2).contains(&ratio),
        "plan-size reduction {ratio:.2} out of the paper's ballpark (1.57x)"
    );
}
