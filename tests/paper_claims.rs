//! The paper's headline quantitative claims, asserted as shape tests.
//! Absolute numbers depend on the substituted substrate (analytic machine
//! model, miniature workloads); these tests pin the *direction and rough
//! magnitude* of every claim.

use kremlin_bench::{all_reports_cached, WorkloadReport};
use kremlin_repro::kremlin::Kremlin;
use kremlin_repro::planner::{Personality, SelfPFilterPlanner, WorkOnlyPlanner};
use std::collections::HashSet;

fn reports() -> &'static [WorkloadReport] {
    all_reports_cached()
}

#[test]
fn fig6a_plan_sizes_shrink_and_overlap() {
    let rs = reports();
    let manual: usize = rs.iter().map(|r| r.manual_regions.len()).sum();
    let kremlin: usize = rs.iter().map(|r| r.kremlin_plan.len()).sum();
    let overlap: usize = rs.iter().map(|r| r.overlap()).sum();
    // Paper: 211 vs 134 (1.57x), overlap 116 — i.e. most Kremlin regions
    // also appear in MANUAL.
    assert!(kremlin < manual);
    let ratio = manual as f64 / kremlin as f64;
    assert!((1.3..1.8).contains(&ratio), "reduction {ratio:.2} vs paper 1.57");
    assert!(overlap as f64 >= 0.6 * kremlin as f64, "overlap {overlap} of {kremlin} too small");
}

#[test]
fn fig6b_kremlin_is_competitive_and_wins_big_on_sp_and_is() {
    for r in reports() {
        let rel = r.relative_speedup();
        match r.workload.name {
            // The coarse-grain cases: Kremlin must clearly beat MANUAL.
            "sp" | "is" => assert!(rel > 1.3, "{}: rel {rel:.2}", r.workload.name),
            // Everywhere else: comparable (within ~25% either way).
            _ => assert!(
                (0.8..1.35).contains(&rel),
                "{}: rel {rel:.2} not comparable",
                r.workload.name
            ),
        }
        // And following Kremlin's plan never loses to serial execution.
        assert!(
            r.eval_kremlin.speedup >= 0.99,
            "{}: plan slower than serial ({:.2})",
            r.workload.name,
            r.eval_kremlin.speedup
        );
    }
}

#[test]
fn fig8_majority_of_benefit_in_first_half() {
    use kremlin_repro::sim::{MachineModel, Simulator};
    let mut first_half = 0.0;
    let mut n = 0;
    for r in reports() {
        let order: Vec<_> = r.kremlin_plan.entries.iter().map(|e| e.region).collect();
        if order.len() < 2 {
            continue;
        }
        let sim = Simulator::new(
            r.analysis.profile(),
            &r.analysis.unit.module.regions,
            MachineModel::default(),
        );
        let curve = sim.marginal_curve(&order);
        let total = curve.last().copied().unwrap_or(0.0);
        if total <= 0.0 {
            continue;
        }
        let half = curve[order.len().div_ceil(2)];
        first_half += half / total;
        n += 1;
    }
    let avg = first_half / n as f64;
    // Paper: 86.4% of benefit from the first half.
    assert!(avg > 0.7, "first-half benefit only {:.1}%", avg * 100.0);
}

#[test]
fn fig9_planner_stages_shrink_plans() {
    let none = HashSet::new();
    for r in reports() {
        let p = r.analysis.profile();
        let work = WorkOnlyPlanner::default().plan(p, &none).len();
        let filt = SelfPFilterPlanner::default().plan(p, &none).len();
        let full = r.kremlin_plan.len();
        assert!(work >= filt, "{}: work {work} < filt {filt}", r.workload.name);
        assert!(filt >= full, "{}: filt {filt} < full {full}", r.workload.name);
    }
}

#[test]
fn sec62_self_parallelism_filters_more_than_total_parallelism() {
    let mut low_tp = 0usize;
    let mut low_sp = 0usize;
    for r in reports() {
        for s in r.analysis.profile().iter() {
            if s.total_p < 5.0 {
                low_tp += 1;
            }
            if s.self_p < 5.0 {
                low_sp += 1;
            }
        }
    }
    let factor = low_sp as f64 / low_tp as f64;
    // Paper: 2.28x more regions identified as low-parallelism.
    assert!(factor > 1.5, "reduction factor {factor:.2} vs paper 2.28");
}

#[test]
fn sec44_compression_is_large_and_scales_with_input() {
    for r in reports() {
        let ratio = r.analysis.profile().dict.compression_ratio();
        assert!(ratio > 50.0, "{}: ratio only {ratio:.0}", r.workload.name);
    }
    // Scaling: 4x the repetitions, ~4x the ratio (alphabet saturates).
    let prog = |reps: u32| {
        format!(
            "float a[64]; int main() {{ for (int r = 0; r < {reps}; r++) {{ for (int i = 0; i < 64; i++) {{ a[i] = a[i] * 0.5 + 1.0; }} }} return 0; }}"
        )
    };
    let small = Kremlin::new().analyze(&prog(16), "s.kc").unwrap();
    let large = Kremlin::new().analyze(&prog(64), "l.kc").unwrap();
    let rs = small.profile().dict.compression_ratio();
    let rl = large.profile().dict.compression_ratio();
    assert!(rl > 3.0 * rs, "ratio did not scale: {rs:.0} -> {rl:.0}");
    assert_eq!(small.profile().dict.len(), large.profile().dict.len());
}

#[test]
fn fig2_hcpa_localizes_parallelism_where_cpa_cannot() {
    let r = kremlin_bench::report_for("tracking");
    let p = r.analysis.profile();
    let sp = |label: &str| {
        let region = r.analysis.region(label).unwrap();
        p.stats(region).unwrap()
    };
    let outer = sp("fill_features#L0");
    let mid = sp("fill_features#L1");
    let inner = sp("fill_features#L2");
    // Self-parallelism: only the innermost is parallel.
    assert!(outer.self_p < 5.0, "outer SP {}", outer.self_p);
    assert!(mid.self_p < 5.0, "mid SP {}", mid.self_p);
    assert!(inner.self_p > 10.0, "inner SP {}", inner.self_p);
    // Total parallelism (plain CPA) would misleadingly flag the outer
    // loops as parallel.
    assert!(outer.total_p > 20.0, "outer TP {}", outer.total_p);
    assert!(mid.total_p > 20.0, "mid TP {}", mid.total_p);
}

#[test]
fn ablation_dependence_breaking_is_what_reveals_doalls() {
    use kremlin_repro::hcpa::{profile_unit, HcpaConfig};
    let w = kremlin_repro::workloads::by_name("ep").unwrap();
    let unit = kremlin_repro::ir::compile(w.source, "ep.kc").unwrap();
    let with = profile_unit(&unit, HcpaConfig::default()).unwrap();
    let without =
        profile_unit(&unit, HcpaConfig { break_carried_deps: false, ..HcpaConfig::default() })
            .unwrap();
    let main_loop = unit.module.regions.by_label("main#L0").unwrap();
    let sp_with = with.profile.stats(main_loop).unwrap().self_p;
    let sp_without = without.profile.stats(main_loop).unwrap().self_p;
    assert!(sp_with > 100.0, "EP loop with breaking: {sp_with}");
    // EP has heavy bodies, so the unbroken accumulator chain halves SP
    // rather than flattening it...
    assert!(
        sp_without < sp_with / 2.0,
        "without breaking, the reduction chain must dominate: {sp_without} vs {sp_with}"
    );

    // ...whereas a light-bodied reduction collapses to near-serial, the
    // paper's motivating case (2.4).
    let unit = kremlin_repro::ir::compile(
        "int main() { int s = 0; for (int i = 0; i < 200; i++) { s += i; } return s; }",
        "sum.kc",
    )
    .unwrap();
    let with = profile_unit(&unit, HcpaConfig::default()).unwrap();
    let without =
        profile_unit(&unit, HcpaConfig { break_carried_deps: false, ..HcpaConfig::default() })
            .unwrap();
    let l0 = unit.module.regions.by_label("main#L0").unwrap();
    let sp_with = with.profile.stats(l0).unwrap().self_p;
    let sp_without = without.profile.stats(l0).unwrap().self_p;
    assert!(sp_with > 50.0, "sum loop with breaking: {sp_with}");
    assert!(sp_without < 5.0, "sum loop without breaking: {sp_without}");
}
