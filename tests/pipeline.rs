//! Cross-crate integration tests: the full compile → instrument →
//! execute → profile → plan → simulate pipeline on hand-written programs.

use kremlin_repro::kremlin::{Kremlin, KremlinError};
use std::collections::HashSet;

#[test]
fn profiling_preserves_program_semantics() {
    // The profiled run and a plain interpreter run must agree exactly.
    let src = "int collatz_steps(int n) {\n\
                 int steps = 0;\n\
                 while (n != 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } steps++; }\n\
                 return steps;\n\
               }\n\
               int main() { int total = 0; for (int n = 1; n < 50; n++) { total += collatz_steps(n); } return total; }";
    let unit = kremlin_repro::ir::compile(src, "collatz.kc").unwrap();
    let plain = kremlin_repro::interp::run(&unit.module).unwrap();
    let analysis = Kremlin::new().analyze(src, "collatz.kc").unwrap();
    assert_eq!(plain.exit, analysis.outcome.run.exit);
    assert_eq!(plain.instrs_executed, analysis.outcome.run.instrs_executed);
}

#[test]
fn plan_regions_are_loops_with_locations() {
    let src = "float a[128];\n\
               int main() { for (int i = 0; i < 128; i++) { a[i] = sqrt((float) i) * 2.0; } return 0; }";
    let analysis = Kremlin::new().analyze(src, "loc.kc").unwrap();
    let plan = analysis.plan_openmp();
    assert_eq!(plan.len(), 1);
    let e = &plan.entries[0];
    assert!(e.location.starts_with("loc.kc ("), "location: {}", e.location);
    assert!(e.self_p > 100.0);
    assert!(e.coverage > 0.9);
}

#[test]
fn openmp_plan_is_an_antichain_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let analysis = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
        let plan = analysis.plan_openmp();
        let regions = plan.regions();
        for &r in &regions {
            let desc = analysis.profile().descendants(r);
            for &other in &regions {
                assert!(
                    other == r || !desc.contains(&other),
                    "{}: nested selections {r:?} > {other:?}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn cilk_plans_are_supersets_of_openmp_plans_in_nests() {
    let src = "float m[64][64];\n\
               int main() {\n\
                 for (int i = 0; i < 64; i++) { for (int j = 0; j < 64; j++) { m[i][j] = sqrt((float)(i + j + 1)); } }\n\
                 return (int) m[2][3];\n\
               }";
    let analysis = Kremlin::new().analyze(src, "nest.kc").unwrap();
    let omp = analysis.plan_openmp();
    let cilk = analysis.plan_cilk();
    assert!(cilk.len() > omp.len(), "cilk {} vs omp {}", cilk.len(), omp.len());
}

#[test]
fn simulator_agrees_with_amdahl_on_simple_program() {
    // One loop, ~full coverage, SP >> cores: speedup should approach the
    // core count minus overheads.
    let src = "float a[8192];\n\
               int main() { for (int i = 0; i < 8192; i++) { a[i] = sqrt((float) i) * exp((float)(i % 3)); } return 0; }";
    let analysis = Kremlin::new().analyze(src, "amdahl.kc").unwrap();
    let plan = analysis.plan_openmp();
    let eval = analysis.evaluate(&plan);
    assert!(eval.speedup > 12.0, "{eval:?}");
    assert!(eval.speedup <= 32.0, "{eval:?}");
}

#[test]
fn runtime_errors_surface_through_the_facade() {
    let e = Kremlin::new()
        .analyze("int main() { float a[4]; int i = 9; a[i] = 1.0; return 0; }", "oob.kc")
        .unwrap_err();
    assert!(matches!(e, KremlinError::Runtime(_)), "{e}");
}

#[test]
fn exclusion_workflow_is_stable_under_iteration() {
    // Repeatedly excluding the top recommendation must terminate with an
    // empty plan (the paper's §3 iterative workflow cannot loop forever).
    let w = kremlin_repro::workloads::by_name("ft").unwrap();
    let analysis = Kremlin::new().analyze(w.source, &w.file_name()).unwrap();
    let planner = kremlin_repro::planner::OpenMpPlanner::default();
    let mut exclude = HashSet::new();
    let mut rounds = 0;
    loop {
        let plan =
            kremlin_repro::planner::Personality::plan(&planner, analysis.profile(), &exclude);
        if plan.is_empty() {
            break;
        }
        exclude.insert(plan.entries[0].region);
        rounds += 1;
        assert!(rounds < 100, "exclusion loop did not converge");
    }
    assert!(rounds >= 6, "ft should yield several rounds, got {rounds}");
}

#[test]
fn optimizer_preserves_semantics_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let plain = kremlin_repro::ir::compile(w.source, &w.file_name()).unwrap();
        let (opt, stats) = kremlin_repro::ir::compile_optimized(w.source, &w.file_name()).unwrap();
        let r1 = kremlin_repro::interp::run(&plain.module).unwrap();
        let r2 = kremlin_repro::interp::run(&opt.module).unwrap();
        assert_eq!(r1.exit, r2.exit, "{}: exit changed", w.name);
        assert!(
            r2.instrs_executed <= r1.instrs_executed,
            "{}: optimization must not add work",
            w.name
        );
        assert!(stats.folded + stats.eliminated > 0, "{}: nothing optimized", w.name);
        // Region structure is untouched: same region table, same dynamic
        // region count when profiled.
        assert_eq!(plain.module.regions.len(), opt.module.regions.len());
        let p1 = kremlin_repro::hcpa::profile_unit(&plain, Default::default()).unwrap();
        let p2 = kremlin_repro::hcpa::profile_unit(&opt, Default::default()).unwrap();
        assert_eq!(
            p1.stats.dynamic_regions, p2.stats.dynamic_regions,
            "{}: optimization changed the region stream",
            w.name
        );
    }
}

#[test]
fn sliced_profiles_plan_identically_to_full_profiles() {
    for name in ["mg", "cg", "tracking"] {
        let w = kremlin_repro::workloads::by_name(name).unwrap();
        let unit = kremlin_repro::ir::compile(w.source, &w.file_name()).unwrap();
        let full = kremlin_repro::hcpa::profile_unit(&unit, Default::default()).unwrap();
        let sliced = kremlin_repro::hcpa::profile_unit_sliced(&unit, 4).unwrap();
        let none = std::collections::HashSet::new();
        let planner = kremlin_repro::planner::OpenMpPlanner::default();
        use kremlin_repro::planner::Personality;
        let p1 = planner.plan(&full.profile, &none);
        let p2 = planner.plan(&sliced.profile, &none);
        let labels = |p: &kremlin_repro::planner::Plan| {
            let mut v: Vec<_> = p.entries.iter().map(|e| e.label.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(labels(&p1), labels(&p2), "{name}: sliced plan diverged");
    }
}

#[test]
fn multi_run_aggregation_is_consistent() {
    let src = "float a[64];\n\
               int main() { for (int i = 0; i < 64; i++) { a[i] = (float) i * 2.0; } return 0; }";
    let one = Kremlin::new().analyze(src, "agg.kc").unwrap();
    let three = Kremlin::new().analyze_runs(src, "agg.kc", 3).unwrap();
    let r = one.region("main#L0").unwrap();
    let s1 = one.profile().stats(r).unwrap();
    let s3 = three.profile().stats(r).unwrap();
    assert_eq!(s3.instances, 3 * s1.instances);
    assert!((s1.self_p - s3.self_p).abs() < 1e-9, "SP must be stable across runs");
    assert!((s1.coverage - s3.coverage).abs() < 1e-9);
}
