//! Stitch-equivalence suite: depth-sharded parallel collection must be
//! bit-identical to a serial full-window pass on **every** bundled `.kc`
//! workload (`ISSUE` satellite for `kremlin_hcpa::parallel`).
//!
//! `identical_stats` compares every per-region statistic bit-for-bit,
//! including the exact per-depth integer accumulators, so a pass here
//! means the sharded pipeline loses nothing relative to serial HCPA.
//!
//! The record-once/replay-many refactor routes every sharded profile
//! through the trace layer, so the tests below also prove replay
//! equivalence: profiling from a replayed trace — serial or fanned out
//! across shard workers — matches live execution exactly.

use kremlin_repro::hcpa::{
    profile_decoded_parallel, profile_trace, profile_trace_parallel, profile_unit, HcpaConfig,
    ParallelConfig, ParallelismProfile, ProfileOutcome, ReplayStrategy,
};
use kremlin_repro::interp::trace::DecodedTrace;
use kremlin_repro::interp::{record, MachineConfig};
use kremlin_repro::ir::compile;

fn serial_and_compiled(
    w: &kremlin_repro::workloads::Workload,
) -> (kremlin_repro::ir::CompiledUnit, ProfileOutcome) {
    let unit = compile(w.source, &w.file_name()).expect("workload compiles");
    let serial = profile_unit(&unit, HcpaConfig::default()).expect("serial profile");
    (unit, serial)
}

fn assert_stitched_identical(
    name: &str,
    jobs: usize,
    serial: &ProfileOutcome,
    sharded: &ProfileOutcome,
) {
    assert!(
        sharded.profile.identical_stats(&serial.profile),
        "{name}: {jobs}-way sharded profile differs from serial"
    );
    assert_eq!(sharded.run, serial.run, "{name}: sharded run result differs");
    assert_eq!(
        sharded.stats.max_depth, serial.stats.max_depth,
        "{name}: sharded max_depth differs"
    );
    assert_eq!(
        sharded.stats.instr_events, serial.stats.instr_events,
        "{name}: sharded instruction-event count differs"
    );
}

/// Every workload, 3-way sharding, depth discovered by the pre-pass — the
/// default `profile_unit_parallel` path end to end.
#[test]
fn three_way_sharding_is_bit_identical_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let sharded = kremlin_repro::hcpa::profile_unit_parallel(
            &unit,
            ParallelConfig { jobs: 3, ..ParallelConfig::default() },
        )
        .expect("sharded profile");
        assert_stitched_identical(w.name, 3, &serial, &sharded);
    }
}

/// Every workload, 2-way sharding with an explicit depth hint — the
/// discovery-free path a caller with a prior run would use.
#[test]
fn two_way_sharding_with_depth_hint_is_bit_identical() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let sharded = kremlin_repro::hcpa::profile_unit_parallel(
            &unit,
            ParallelConfig {
                jobs: 2,
                depth_hint: Some(serial.stats.max_depth),
                ..ParallelConfig::default()
            },
        )
        .expect("sharded profile");
        assert_stitched_identical(w.name, 2, &serial, &sharded);
    }
}

/// Every workload: one recorded trace replayed into a serial profiler is
/// `identical_stats` to profiling the live execution directly.
#[test]
fn serial_replay_matches_live_execution_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let trace = record(&unit.module, MachineConfig::default()).expect("record");
        assert_eq!(
            trace.run_result(),
            serial.run,
            "{}: recorded run differs from live run",
            w.name
        );
        let replayed =
            profile_trace(&unit, &trace, HcpaConfig::default()).expect("own trace replays");
        assert_stitched_identical(w.name, 1, &serial, &replayed);
    }
}

/// Every workload: the same immutable trace replayed by 3 shard workers
/// and stitched is bit-identical to serial — interpretation happens once,
/// never per shard.
#[test]
fn sharded_replay_of_one_trace_is_bit_identical_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let trace = record(&unit.module, MachineConfig::default()).expect("record");
        let sharded = profile_trace_parallel(
            &unit,
            &trace,
            ParallelConfig { jobs: 3, ..ParallelConfig::default() },
        )
        .expect("own trace replays sharded");
        assert_stitched_identical(w.name, 3, &serial, &sharded);
    }
}

/// Every workload: the decode-once arena strategy and the streaming
/// strategy over the same trace are both bit-identical to serial — the
/// two replay paths are interchangeable, shard plan differences
/// (cost-balanced vs uniform) and all.
#[test]
fn decoded_and_streaming_sharded_replay_agree_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let trace = record(&unit.module, MachineConfig::default()).expect("record");
        for (strategy, label) in
            [(ReplayStrategy::Decoded, "decoded"), (ReplayStrategy::Streaming, "streaming")]
        {
            let sharded = profile_trace_parallel(
                &unit,
                &trace,
                ParallelConfig { jobs: 3, strategy, ..ParallelConfig::default() },
            )
            .unwrap_or_else(|e| panic!("{}: {label} replay fails: {e:?}", w.name));
            assert_stitched_identical(w.name, 3, &serial, &sharded);
        }
        // The pre-decoded entry point (one arena, many profiling runs)
        // matches too.
        let arena = DecodedTrace::decode(&trace, &unit.module).expect("decode");
        let sharded = profile_decoded_parallel(&unit, &arena, ParallelConfig::default())
            .expect("decoded arena replays sharded");
        assert_stitched_identical(w.name, 3, &serial, &sharded);
    }
}

/// Replay survives the disk round trip on **every** workload: encode,
/// re-parse from bytes, decode into the arena, then shard — the stitched
/// result must still be bit-identical to live serial profiling.
#[test]
fn sharded_replay_survives_the_byte_round_trip() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let trace = record(&unit.module, MachineConfig::default()).expect("record");
        let reparsed = kremlin_repro::interp::Trace::from_bytes(&trace.to_bytes())
            .expect("encoded trace decodes");
        let sharded = profile_trace_parallel(
            &unit,
            &reparsed,
            ParallelConfig { jobs: 2, ..ParallelConfig::default() },
        )
        .expect("round-tripped trace replays sharded");
        assert_stitched_identical(w.name, 2, &serial, &sharded);
        // And explicitly through the arena, so the decode-once path is
        // proven against disk bytes, not just in-memory traces.
        let arena = DecodedTrace::decode(&reparsed, &unit.module).expect("decode");
        let sharded = profile_decoded_parallel(
            &unit,
            &arena,
            ParallelConfig { jobs: 3, ..ParallelConfig::default() },
        )
        .expect("round-tripped arena replays sharded");
        assert_stitched_identical(w.name, 3, &serial, &sharded);
    }
}

/// Stitching the trivial one-slice case is the identity: guards against
/// the stitcher quietly renormalizing anything when there is nothing to
/// stitch.
#[test]
fn one_slice_stitch_is_identity() {
    let w = kremlin_repro::workloads::by_name("is").expect("is workload");
    let (_, serial) = serial_and_compiled(&w);
    let slices = [serial.profile.clone()];
    let stitched = ParallelismProfile::stitch(&slices, HcpaConfig::default().window);
    assert!(stitched.identical_stats(&serial.profile));
}
