//! Stitch-equivalence suite: depth-sharded parallel collection must be
//! bit-identical to a serial full-window pass on **every** bundled `.kc`
//! workload (`ISSUE` satellite for `kremlin_hcpa::parallel`).
//!
//! `identical_stats` compares every per-region statistic bit-for-bit,
//! including the exact per-depth integer accumulators, so a pass here
//! means the sharded pipeline loses nothing relative to serial HCPA.

use kremlin_repro::hcpa::{
    profile_unit, HcpaConfig, ParallelConfig, ParallelismProfile, ProfileOutcome,
};
use kremlin_repro::ir::compile;

fn serial_and_compiled(
    w: &kremlin_repro::workloads::Workload,
) -> (kremlin_repro::ir::CompiledUnit, ProfileOutcome) {
    let unit = compile(w.source, &w.file_name()).expect("workload compiles");
    let serial = profile_unit(&unit, HcpaConfig::default()).expect("serial profile");
    (unit, serial)
}

fn assert_stitched_identical(
    name: &str,
    jobs: usize,
    serial: &ProfileOutcome,
    sharded: &ProfileOutcome,
) {
    assert!(
        sharded.profile.identical_stats(&serial.profile),
        "{name}: {jobs}-way sharded profile differs from serial"
    );
    assert_eq!(sharded.run, serial.run, "{name}: sharded run result differs");
    assert_eq!(
        sharded.stats.max_depth, serial.stats.max_depth,
        "{name}: sharded max_depth differs"
    );
    assert_eq!(
        sharded.stats.instr_events, serial.stats.instr_events,
        "{name}: sharded instruction-event count differs"
    );
}

/// Every workload, 3-way sharding, depth discovered by the pre-pass — the
/// default `profile_unit_parallel` path end to end.
#[test]
fn three_way_sharding_is_bit_identical_on_every_workload() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let sharded = kremlin_repro::hcpa::profile_unit_parallel(
            &unit,
            ParallelConfig { jobs: 3, ..ParallelConfig::default() },
        )
        .expect("sharded profile");
        assert_stitched_identical(w.name, 3, &serial, &sharded);
    }
}

/// Every workload, 2-way sharding with an explicit depth hint — the
/// discovery-free path a caller with a prior run would use.
#[test]
fn two_way_sharding_with_depth_hint_is_bit_identical() {
    for w in kremlin_repro::workloads::all() {
        let (unit, serial) = serial_and_compiled(&w);
        let sharded = kremlin_repro::hcpa::profile_unit_parallel(
            &unit,
            ParallelConfig {
                jobs: 2,
                depth_hint: Some(serial.stats.max_depth),
                ..ParallelConfig::default()
            },
        )
        .expect("sharded profile");
        assert_stitched_identical(w.name, 2, &serial, &sharded);
    }
}

/// Stitching the trivial one-slice case is the identity: guards against
/// the stitcher quietly renormalizing anything when there is nothing to
/// stitch.
#[test]
fn one_slice_stitch_is_identity() {
    let w = kremlin_repro::workloads::by_name("is").expect("is workload");
    let (_, serial) = serial_and_compiled(&w);
    let slices = [serial.profile.clone()];
    let stitched = ParallelismProfile::stitch(&slices, HcpaConfig::default().window);
    assert!(stitched.identical_stats(&serial.profile));
}
